package ffi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gatetrace"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vkey"
	"repro/internal/vm"
)

// GateMode selects how much of PKRU-Safe's instrumentation is active,
// matching the paper's three Servo configurations (§5.3).
type GateMode uint8

const (
	// GatesOff: no call gates; every compartment runs with full rights.
	// Combined with a single-pool allocator this is the "base" config,
	// with the split allocator it is the "alloc" config.
	GatesOff GateMode = iota
	// GatesOn: full call-gate instrumentation (the "mpk" config).
	GatesOn
)

// ErrGateTampered is returned (and the program aborted) when a call gate's
// PKRU verification fails, the simulated analogue of the gate's hardened
// check-and-exit sequence.
var ErrGateTampered = errors.New("ffi: call gate PKRU verification failed")

// ErrAborted is returned for any call after the runtime has aborted.
var ErrAborted = errors.New("ffi: program aborted")

// DefaultGateCost is the default WRPKRU cost in spin iterations (see
// SetGateCost). The value is calibrated so that the Empty micro-benchmark
// lands near the paper's measured call-gate factor: WRPKRU serializes the
// pipeline, costing far more than the call it wraps, and the simulator
// must reproduce that *ratio* even though its baseline call is ~25x more
// expensive than a native one.
const DefaultGateCost = 100

// Runtime binds a registry of libraries to an address space, allocator and
// signal table, and mints threads that can call across the boundary.
type Runtime struct {
	Registry *Registry
	Alloc    *pkalloc.Allocator
	Sigs     *sig.Table

	mode          GateMode
	untrustedPKRU mpk.PKRU
	gateCost      int
	ring          *trace.Ring
	transitions   atomic.Uint64
	aborted       atomic.Bool
	exitAudit     atomic.Bool
	tel           *runtimeTelemetry
	sink          CrossingSink

	domainMu sync.RWMutex
	domains  map[string]DomainBinding // per-library compartment bindings
	nDomains atomic.Int32             // len(domains), read lock-free on the call path
	// vtable is the virtual-key table behind the domain bindings (one per
	// runtime). Gate exits on a runtime with virtualized domains route
	// through it so the caller's compartment is re-derived — re-activating
	// its logical key — instead of replaying saved PKRU bits whose slot
	// grants an eviction may have rebound to another tenant.
	vtable atomic.Pointer[vkey.Table]
}

// DomainBinding ties an untrusted library to a virtualized compartment:
// calls into the library gate through the vkey table — binding the
// calling thread for eviction-time revocation and atomically activating
// the domain's logical key and installing its rights — and the library's
// allocations route to the named per-domain pool instead of the shared MU.
type DomainBinding struct {
	// Pool is the pkalloc domain pool the library allocates from; empty
	// keeps the shared MU pool.
	Pool string
	// Table is the virtual-key table multiplexing the domain; every bound
	// library of one runtime must share a single table.
	Table *vkey.Table
	// Key is the domain's logical protection key in Table.
	Key vkey.ID
}

// BindLibraryDomain attaches (or, with a zero binding, detaches) a
// per-library domain binding. Calls into a bound untrusted library always
// gate — even from other untrusted code — because crossing between two
// mutually-distrusting domains needs a rights switch just like crossing
// the T/U boundary.
func (rt *Runtime) BindLibraryDomain(lib string, b DomainBinding) {
	rt.domainMu.Lock()
	defer rt.domainMu.Unlock()
	if rt.domains == nil {
		rt.domains = make(map[string]DomainBinding)
	}
	if b.Pool == "" && b.Table == nil {
		delete(rt.domains, lib)
	} else {
		rt.domains[lib] = b
	}
	if b.Table != nil {
		rt.vtable.Store(b.Table)
	}
	rt.nDomains.Store(int32(len(rt.domains)))
}

// domainBinding returns the binding for lib, if any. The unbound case —
// every run that never calls BindLibraryDomain — is a single atomic
// load, so the two-compartment call path pays nothing for the domains
// feature.
func (rt *Runtime) domainBinding(lib string) (DomainBinding, bool) {
	if rt.nDomains.Load() == 0 {
		return DomainBinding{}, false
	}
	rt.domainMu.RLock()
	defer rt.domainMu.RUnlock()
	b, ok := rt.domains[lib]
	return b, ok
}

// CrossingSink receives one observation per forward (T→U) gate traversal:
// the target library, the argument words the call carried across the
// boundary, and the gate's enter→restore latency. The profiling plane's
// crossing sampler implements this to attribute boundary crossings to
// allocation sites; the interface lives here so implementations need not
// import ffi. Observations are delivered from the gate's exit path, after
// rights are restored, so a sink may safely inspect trusted state.
type CrossingSink interface {
	ObserveCrossing(lib string, args []uint64, latency time.Duration)
}

// SetCrossingSink attaches a forward-gate observation sink (nil detaches).
// With no sink attached the gated call path pays one pointer test.
func (rt *Runtime) SetCrossingSink(s CrossingSink) { rt.sink = s }

// CrossingSink returns the attached sink, if any.
func (rt *Runtime) CrossingSink() CrossingSink { return rt.sink }

// runtimeTelemetry holds the registry handles the FFI layer reports into.
// A nil *runtimeTelemetry (the default) disables reporting; the gated call
// path then pays one pointer test.
type runtimeTelemetry struct {
	vm      *vm.Metrics
	enterU  *telemetry.Counter      // forward gates: trusted → untrusted
	enterT  *telemetry.Counter      // reverse gates: untrusted → trusted
	gateLat *telemetry.HistogramVec // gate enter→exit latency by target library
}

// SetTelemetry attaches the runtime (and every thread minted afterwards)
// to a metrics registry: gate crossings are counted by direction, each
// gated call's enter→exit latency is observed into a per-library
// histogram, and threads promote their access/fault counters into the
// registry. A nil registry detaches.
func (rt *Runtime) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		rt.tel = nil
		return
	}
	crossings := reg.CounterVec("pkrusafe_gate_crossings_total",
		"Compartment boundary crossings through call gates, by direction.", "direction")
	rt.tel = &runtimeTelemetry{
		vm:     vm.NewMetrics(reg),
		enterU: crossings.With("enter_untrusted"),
		enterT: crossings.With("enter_trusted"),
		gateLat: reg.HistogramVec("pkrusafe_gate_latency_ns",
			"Gated call latency from gate enter to rights restore, by target library.", "ns", "lib"),
	}
}

// NewRuntime creates a runtime. The untrusted PKRU value denies all access
// to the allocator's trusted key while keeping the default key 0 (MU and
// everything else) accessible.
func NewRuntime(reg *Registry, alloc *pkalloc.Allocator, sigs *sig.Table, mode GateMode) *Runtime {
	if sigs == nil {
		sigs = new(sig.Table)
	}
	return &Runtime{
		Registry:      reg,
		Alloc:         alloc,
		Sigs:          sigs,
		mode:          mode,
		untrustedPKRU: mpk.PermitAll.With(alloc.TrustedKey(), mpk.DenyAll),
		gateCost:      DefaultGateCost,
	}
}

// SetGateCost sets the simulated cost of one WRPKRU in spin iterations
// (each roughly a nanosecond). Each gate traversal executes two WRPKRUs —
// enter and restore — as the paper's assembly stubs do. Zero makes gates
// free, which is useful for ablation benchmarks.
func (rt *Runtime) SetGateCost(n int) {
	if n < 0 {
		n = 0
	}
	rt.gateCost = n
}

// GateCost returns the per-WRPKRU spin count.
func (rt *Runtime) GateCost() int { return rt.gateCost }

// SetTrace attaches an event ring recording gate traversals (nil detaches).
func (rt *Runtime) SetTrace(r *trace.Ring) { rt.ring = r }

// Trace returns the attached event ring, if any.
func (rt *Runtime) Trace() *trace.Ring { return rt.ring }

// gateSink defeats dead-code elimination of the WRPKRU spin.
var gateSink atomic.Uint64

// wrpkruDelay models the pipeline-serializing cost of a WRPKRU write.
func wrpkruDelay(n int) {
	acc := uint64(1)
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	gateSink.Store(acc)
}

// Mode returns the runtime's gate mode.
func (rt *Runtime) Mode() GateMode { return rt.mode }

// UntrustedPKRU returns the rights value gates install when entering U.
func (rt *Runtime) UntrustedPKRU() mpk.PKRU { return rt.untrustedPKRU }

// Transitions returns the number of compartment boundary crossings
// performed through gates (each forward or reverse gate entry counts one).
func (rt *Runtime) Transitions() uint64 { return rt.transitions.Load() }

// Aborted reports whether a gate detected tampering and killed the program.
func (rt *Runtime) Aborted() bool { return rt.aborted.Load() }

// Abort kills the program: every subsequent cross-library call fails with
// ErrAborted. Gate verification calls this on PKRU mismatch; it is also
// the hook a watchdog would use.
func (rt *Runtime) Abort() { rt.aborted.Store(true) }

// SetExitAudit arms (or disarms) the gate-exit PKRU audit: before a gate's
// exit half restores the caller's rights, the rights the callee left
// behind are compared against the rights the gate installed. Any
// escalation — the callee (or a handler it suborned) widened its own PKRU
// and the widening survived to the gate — aborts the runtime with
// ErrGateTampered instead of silently resuming trusted code. This
// generalizes the supervisor's write-then-readback check from the one
// recovery path to every gated return. Default off: the baseline gates
// match the paper's stubs, which verify only what they themselves write.
func (rt *Runtime) SetExitAudit(on bool) { rt.exitAudit.Store(on) }

// ExitAudit reports whether the gate-exit PKRU audit is armed.
func (rt *Runtime) ExitAudit() bool { return rt.exitAudit.Load() }

// NewThread mints an execution context starting in the trusted compartment
// with full rights.
func (rt *Runtime) NewThread() *Thread {
	t := &Thread{rt: rt, VM: vm.NewThread(rt.Alloc.Space(), rt.Sigs)}
	if tel := rt.tel; tel != nil {
		t.VM.SetMetrics(tel.vm)
	}
	return t
}

// Thread is one execution context: a simulated CPU, the per-thread
// compartment stack the gates push saved PKRU values onto, and a logical
// trust stack recording whose *code* is currently running. The two differ
// in the gates-off builds: untrusted library code still runs (and still
// allocates from its own heap, MU) even though no rights are dropped —
// exactly as SpiderMonkey keeps using its own malloc in the paper's base
// configuration.
type Thread struct {
	rt    *Runtime
	VM    *vm.Thread
	stack []mpk.PKRU // saved rights, pushed by gates
	trust []Trust    // logical compartment of the running code
	libs  []string   // library whose code is running, parallel to trust
	tc    *gatetrace.Context
}

// SetTraceContext attaches the request-scoped trace context the thread is
// currently executing on behalf of (nil detaches). Every gate traversal
// while the context is attached becomes a timed span on it, so the
// request's trace correlates gate enter/exit with whatever the supervisor
// and the vkey table record in between.
func (t *Thread) SetTraceContext(c *gatetrace.Context) { t.tc = c }

// TraceContext returns the attached trace context, if any.
func (t *Thread) TraceContext() *gatetrace.Context { return t.tc }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// CurrentTrust reports whose code is logically executing (independent of
// gate mode). A fresh thread starts in trusted code.
func (t *Thread) CurrentTrust() Trust {
	if len(t.trust) == 0 {
		return Trusted
	}
	return t.trust[len(t.trust)-1]
}

// InUntrusted reports whether untrusted-library code is currently running.
func (t *Thread) InUntrusted() bool { return t.CurrentTrust() == Untrusted }

// Depth returns the current compartment-stack depth: the number of gate
// traversals live on this thread (always zero with gates off).
func (t *Thread) Depth() int { return len(t.stack) }

// Call invokes lib.fn with the gate discipline the annotations imply:
//
//   - calling an untrusted library enters U through a forward gate;
//   - calling a trusted library while in U enters T through a reverse gate
//     (the instrumentation added to address-taken/exported T functions);
//   - all other calls are plain calls.
//
// In GatesOff mode every call is plain (no rights change), matching the
// base/alloc builds, but the logical trust of the callee is still tracked.
func (t *Thread) Call(lib, fn string, args ...uint64) ([]uint64, error) {
	if t.rt.aborted.Load() {
		return nil, ErrAborted
	}
	l, f, err := t.rt.Registry.Lookup(lib, fn)
	if err != nil {
		return nil, err
	}
	// The syscall-filter analogue: untrusted code requesting a trusted
	// entry point must be on the registry's allow-list. Checked before any
	// gate work so a filtered call leaves no partial gate state behind.
	if t.InUntrusted() {
		if ferr := t.rt.Registry.checkFilter(t.CurrentLib(), l, fn); ferr != nil {
			t.tc.Instant("gate-refused", l.Name, ferr.Error())
			return nil, ferr
		}
	}
	if t.rt.mode == GatesOn {
		target := mpk.PermitAll
		gated := l.Trust != t.CurrentTrust()
		var dom *DomainBinding
		if l.Trust == Untrusted {
			target = t.rt.untrustedPKRU
			if b, ok := t.rt.domainBinding(l.Name); ok && b.Table != nil {
				// Cross-domain calls gate even U→U: a different current
				// compartment means a different sandbox, and entering it
				// with the caller's PKRU would merge the two. Only a call
				// that stays within the library's own domain is plain.
				dom = &b
				gated = gated || b.Table.Current(t.VM) != b.Key
			}
		}
		if gated {
			return t.throughGate(l.Name, l.Trust, target, dom, f, args)
		}
	}
	return t.plainCall(l.Name, l.Trust, f, args)
}

// CallNoGate invokes lib.fn without any gate, regardless of annotations.
// It models untrusted code jumping directly to a trusted function that was
// not instrumented: the callee runs with the caller's (untrusted) rights
// and crashes the moment it touches MT (§3.3). Exposed for the security
// evaluation and the interpreter's uninstrumented-callee path.
func (t *Thread) CallNoGate(lib, fn string, args ...uint64) ([]uint64, error) {
	if t.rt.aborted.Load() {
		return nil, ErrAborted
	}
	l, f, err := t.rt.Registry.Lookup(lib, fn)
	if err != nil {
		return nil, err
	}
	return t.plainCall(l.Name, l.Trust, f, args)
}

// plainCall runs f with the callee's logical trust pushed but no rights
// change. The pop rides a defer so a panicking callee leaves the trust
// stack balanced while the panic propagates.
func (t *Thread) plainCall(libName string, trust Trust, f Func, args []uint64) ([]uint64, error) {
	t.trust = append(t.trust, trust)
	t.libs = append(t.libs, libName)
	defer func() {
		t.trust = t.trust[:len(t.trust)-1]
		t.libs = t.libs[:len(t.libs)-1]
	}()
	return f(t, args)
}

// throughGate performs one gated call: push current rights, install and
// verify the target rights, run, restore. The exit half runs under a
// defer, so the gate unwinds itself — popping its compartment-stack frame
// and restoring the caller's rights — even when the callee panics. That is
// the property the fault supervisor's recovery points build on: by the
// time a panic (or an error return) reaches the trusted frame, every gate
// it crossed has already restored the rights it saved.
//
// A non-nil dom makes this a domain gate: entry binds t.VM to the vkey
// table for eviction-time revocation and activates-and-installs the
// domain's rights atomically with respect to eviction, and the exit half
// re-derives the caller's compartment through vkey.Leave instead of
// replaying the saved PKRU — whose slot grants an eviction may have
// rebound to a different tenant while the callee ran (the Garmr
// stale-PKRU hazard). Plain gates on a runtime with virtualized domains
// re-derive through vkey.Refresh for the same reason; only a runtime with
// no domain bindings replays saved bits, which are then always one of the
// two static compartment values.
func (t *Thread) throughGate(libName string, trust Trust, target mpk.PKRU, dom *DomainBinding, f Func, args []uint64) (res []uint64, err error) {
	var sp telemetry.Span
	if tel := t.rt.tel; tel != nil {
		if trust == Untrusted {
			tel.enterU.Inc()
		} else {
			tel.enterT.Inc()
		}
		sp = telemetry.StartSpan(tel.gateLat.With(libName), t.rt.ring, "gate:"+libName)
	}
	// The request-scoped trace span is attributed to the compartment
	// *domain* — the tenant pool when one is bound, the target library
	// otherwise — because that is the axis slot pressure and per-tenant
	// latency blame live on.
	domainLabel := libName
	if dom != nil && dom.Pool != "" {
		domainLabel = dom.Pool
	}
	endTraceSpan := t.tc.GateSpan(domainLabel)
	// Forward crossings are the profiling plane's signal: what trusted data
	// flowed into U and through which gate. The timestamp is taken before
	// the enter WRPKRU so the reported latency matches the gate-latency
	// histogram's enter→restore span.
	sink := t.rt.sink
	var crossStart time.Time
	if sink != nil && trust == Untrusted {
		crossStart = time.Now()
	} else {
		sink = nil
	}
	prev := t.VM.Rights()
	var enterErr error
	domEntered := false
	if dom != nil {
		if target, enterErr = dom.Table.Enter(t.VM, dom.Key); enterErr == nil {
			domEntered = true
		} else if !errors.Is(enterErr, mpk.ErrRightsAudit) {
			// Activation failed before any rights were written — the key
			// was freed, or no slot could be found. Fail closed without
			// running the callee; nothing was installed, so there are no
			// gate frames to unwind and the runtime stays alive.
			sp.End()
			endTraceSpan()
			t.tc.Instant("gate-refused", domainLabel, enterErr.Error())
			return nil, fmt.Errorf("ffi: entering domain for %s: %w", libName, enterErr)
		}
	}
	t.stack = append(t.stack, prev)
	t.trust = append(t.trust, trust)
	t.libs = append(t.libs, libName)
	if dom == nil {
		enterErr = mpk.InstallAudited(t.VM, target)
	}
	wrpkruDelay(t.rt.gateCost)
	if t.rt.ring != nil {
		t.rt.ring.Emit(trace.Event{Kind: trace.GateEnter, A: uint64(uint32(target))})
	}
	defer func() {
		t.trust = t.trust[:len(t.trust)-1]
		t.libs = t.libs[:len(t.libs)-1]
		t.stack = t.stack[:len(t.stack)-1]
		// The gate-exit audit: before restoring anything, check the rights
		// the callee left behind against the rights this gate installed.
		// An escalation means the compartment widened its own PKRU and the
		// widening survived to the gate — restore would paper over it and
		// trusted code would resume as if the excursion never happened.
		if t.rt.exitAudit.Load() && enterErr == nil && t.VM.Rights().Escalates(target) {
			t.rt.aborted.Store(true)
			if err == nil {
				err = fmt.Errorf("%w: exit audit: callee left %v, gate installed %v",
					ErrGateTampered, t.VM.Rights(), target)
			}
		}
		// The exit half is audited exactly like the entry: restoring the
		// caller's rights without proving the write stuck is the Garmr
		// gate-exit class — trusted code would resume on a poisoned PKRU.
		restored := prev
		var rerr error
		switch {
		case domEntered:
			restored, rerr = dom.Table.Leave(t.VM, prev)
		case t.rt.vtable.Load() != nil:
			restored, rerr = t.rt.vtable.Load().Refresh(t.VM, prev)
		default:
			rerr = mpk.InstallAudited(t.VM, prev)
		}
		if rerr != nil {
			t.rt.aborted.Store(true)
		}
		wrpkruDelay(t.rt.gateCost)
		if t.rt.ring != nil {
			t.rt.ring.Emit(trace.Event{Kind: trace.GateExit, A: uint64(uint32(restored))})
		}
		sp.End()
		endTraceSpan()
		if sink != nil {
			sink.ObserveCrossing(libName, args, time.Since(crossStart))
		}
	}()
	// The gate's self-check: the PKRU we installed must be the one the gate
	// was compiled to enforce. On real hardware this defeats whole-function
	// reuse of gates under CFI; here it guards against runtime tampering.
	if enterErr != nil {
		t.rt.aborted.Store(true)
		return nil, fmt.Errorf("%w: %v", ErrGateTampered, enterErr)
	}
	t.rt.transitions.Add(1)
	return f(t, args)
}

// Checkpoint captures the state a recovery point must restore: the gate
// and trust stack depths at a trusted frame plus the PKRU in force there.
// It is an opaque token minted by Thread.Checkpoint and consumed by
// Thread.Unwind.
type Checkpoint struct {
	gateDepth  int
	trustDepth int
	vDepth     int // vkey compartment-stack depth, when domains are bound
	rights     mpk.PKRU
}

// Rights returns the PKRU value in force when the checkpoint was taken.
func (cp Checkpoint) Rights() mpk.PKRU { return cp.rights }

// Checkpoint records a recovery point at the current frame. Take it in
// trusted code immediately before a supervised cross-compartment call.
func (t *Thread) Checkpoint() Checkpoint {
	cp := Checkpoint{gateDepth: len(t.stack), trustDepth: len(t.trust), rights: t.VM.Rights()}
	if vt := t.rt.vtable.Load(); vt != nil {
		cp.vDepth = vt.Depth(t.VM)
	}
	return cp
}

// Unwind forces the thread back to a checkpointed frame: any gate and
// trust frames pushed since the checkpoint are discarded, the
// checkpointed PKRU is reinstalled through a WRPKRU, and — like a gate's
// own self-check — the installed value is read back and verified. Because
// gates self-unwind on both error returns and panics, the stacks are
// normally already at checkpoint depth and Unwind only has to prove it;
// the truncation is the backstop that makes recovery sound even if an
// untrusted callee corrupted the bookkeeping. A verification failure
// aborts the runtime and returns ErrGateTampered: recovery must never
// resume trusted code with untrusted rights. Unwinding to a checkpoint
// deeper than the current stacks is a caller bug and also errors.
func (t *Thread) Unwind(cp Checkpoint) error {
	if cp.gateDepth > len(t.stack) || cp.trustDepth > len(t.trust) {
		return fmt.Errorf("ffi: unwind to depth %d/%d above current %d/%d",
			cp.gateDepth, cp.trustDepth, len(t.stack), len(t.trust))
	}
	t.stack = t.stack[:cp.gateDepth]
	t.trust = t.trust[:cp.trustDepth]
	if cp.trustDepth <= len(t.libs) {
		t.libs = t.libs[:cp.trustDepth]
	}
	var err error
	if vt := t.rt.vtable.Load(); vt != nil {
		// Discard domain frames pushed since the checkpoint, then restore
		// the checkpointed compartment by re-derivation: any domain frame
		// still live at checkpoint depth is re-activated rather than
		// resurrected from the saved PKRU bits.
		vt.TruncateTo(t.VM, cp.vDepth)
		_, err = vt.Refresh(t.VM, cp.rights)
	} else {
		err = mpk.InstallAudited(t.VM, cp.rights)
	}
	wrpkruDelay(t.rt.gateCost)
	if err != nil {
		t.rt.aborted.Store(true)
		return fmt.Errorf("%w: %v", ErrGateTampered, err)
	}
	if t.rt.ring != nil {
		t.rt.ring.Emit(trace.Event{Kind: trace.Recover, A: uint64(uint32(cp.rights)), Note: "unwind"})
	}
	return nil
}

// CurrentLib returns the library whose code is logically running, or ""
// in the initial trusted frame.
func (t *Thread) CurrentLib() string {
	if len(t.libs) == 0 {
		return ""
	}
	return t.libs[len(t.libs)-1]
}

// Malloc allocates from the pool appropriate to the running code's
// compartment: untrusted code gets MU (libc malloc) — or its library's
// private domain pool when one is bound — and trusted code gets MT.
func (t *Thread) Malloc(size uint64) (vm.Addr, error) {
	if t.InUntrusted() {
		if lib := t.CurrentLib(); lib != "" {
			if b, ok := t.rt.domainBinding(lib); ok && b.Pool != "" {
				return t.rt.Alloc.DomainAlloc(b.Pool, size)
			}
		}
		return t.rt.Alloc.UntrustedAlloc(size)
	}
	return t.rt.Alloc.Alloc(size)
}

// Free releases an allocation from whichever pool owns it.
func (t *Thread) Free(addr vm.Addr) error { return t.rt.Alloc.Free(addr) }

// fault wraps a vm fault with call context.
func callErr(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("ffi: %s: %w", op, err)
}

// Load64 reads a word through the thread's checked view of memory.
func (t *Thread) Load64(addr vm.Addr) (uint64, error) {
	v, err := t.VM.Load64(addr)
	return v, callErr("load64", err)
}

// Store64 writes a word through the thread's checked view of memory.
func (t *Thread) Store64(addr vm.Addr, v uint64) error {
	return callErr("store64", t.VM.Store64(addr, v))
}

// Load8 reads a byte through the thread's checked view of memory.
func (t *Thread) Load8(addr vm.Addr) (byte, error) {
	v, err := t.VM.Load8(addr)
	return v, callErr("load8", err)
}

// Store8 writes a byte through the thread's checked view of memory.
func (t *Thread) Store8(addr vm.Addr, v byte) error {
	return callErr("store8", t.VM.Store8(addr, v))
}

// ReadBytes reads n bytes at addr through the checked view.
func (t *Thread) ReadBytes(addr vm.Addr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := t.VM.Read(addr, buf); err != nil {
		return nil, callErr("read", err)
	}
	return buf, nil
}

// WriteBytes writes buf at addr through the checked view.
func (t *Thread) WriteBytes(addr vm.Addr, buf []byte) error {
	return callErr("write", t.VM.Write(addr, buf))
}
