package compile

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/pkir"
	"repro/internal/profile"
)

const src = `
module m

untrusted export func u_read(ptr) {
entry:
  v = load ptr
  ret v
}

untrusted func u_helper() {
entry:
  call t_internal()
  ret
}

export func t_api() {
entry:
  ret
}

func t_internal() {
entry:
  ret
}

export func main() {
entry:
  a = alloc 8
  b = alloc 16
  r = realloc b, 32
  fp = funcaddr t_api
  x = call u_read(a)
  jmp second
second:
  c = alloc 24
  call t_internal()
  ret
}
`

func parse(t *testing.T) *ir.Module {
	t.Helper()
	m, err := pkir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAssignAllocIDs(t *testing.T) {
	m := parse(t)
	n := AssignAllocIDs(m)
	if n != 4 {
		t.Fatalf("sites = %d, want 4 (2 alloc + 1 realloc in entry, 1 alloc in second)", n)
	}
	main, _ := m.Func("main")
	entry := main.Blocks[0]
	want := []profile.AllocID{
		{Func: "main", Block: 0, Site: 0},
		{Func: "main", Block: 0, Site: 1},
		{Func: "main", Block: 0, Site: 2},
	}
	got := []profile.AllocID{entry.Instrs[0].Site, entry.Instrs[1].Site, entry.Instrs[2].Site}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("site %d = %v, want %v", i, got[i], want[i])
		}
	}
	second := main.Blocks[1]
	if second.Instrs[0].Site != (profile.AllocID{Func: "main", Block: 1, Site: 0}) {
		t.Errorf("second-block site = %v", second.Instrs[0].Site)
	}
	// Idempotent and stable.
	if n2 := AssignAllocIDs(m); n2 != n {
		t.Errorf("second assignment = %d", n2)
	}
}

func TestMarkAddressTaken(t *testing.T) {
	m := parse(t)
	n := MarkAddressTaken(m)
	if n != 1 {
		t.Fatalf("address-taken = %d, want 1", n)
	}
	api, _ := m.Func("t_api")
	if !api.AddressTaken {
		t.Error("t_api not marked")
	}
	internal, _ := m.Func("t_internal")
	if internal.AddressTaken {
		t.Error("t_internal wrongly marked")
	}
	if MarkAddressTaken(m) != 0 {
		t.Error("second run re-marked functions")
	}
}

func TestNeedsEntryGate(t *testing.T) {
	m := parse(t)
	MarkAddressTaken(m)
	cases := map[string]bool{
		"t_api":      true,  // trusted + exported + address-taken
		"t_internal": false, // trusted, not exported, not address-taken
		"u_read":     false, // untrusted never gets a T-entry gate
		"main":       true,  // exported trusted
	}
	for name, want := range cases {
		f, _ := m.Func(name)
		if got := f.NeedsEntryGate(); got != want {
			t.Errorf("%s.NeedsEntryGate() = %v, want %v", name, got, want)
		}
	}
}

func TestInsertGates(t *testing.T) {
	m := parse(t)
	n := InsertGates(m)
	// main -> u_read (T->U), u_helper -> t_internal (U->T).
	if n != 2 {
		t.Fatalf("gates = %d, want 2", n)
	}
	main, _ := m.Func("main")
	var sawForward bool
	for _, b := range main.Blocks {
		for _, ins := range b.Instrs {
			if ins.Op == ir.OpCall && ins.Callee == "u_read" && ins.Gate == ir.GateEnterUntrusted {
				sawForward = true
			}
			if ins.Op == ir.OpCall && ins.Callee == "t_internal" && ins.Gate != ir.GateNone {
				t.Error("T->T call gated")
			}
		}
	}
	if !sawForward {
		t.Error("forward gate missing on main->u_read")
	}
	helper, _ := m.Func("u_helper")
	if helper.Entry().Instrs[0].Gate != ir.GateEnterTrusted {
		t.Error("reverse gate missing on u_helper->t_internal")
	}
}

func TestApplyProfile(t *testing.T) {
	m := parse(t)
	AssignAllocIDs(m)
	prof := profile.New()
	prof.Add(profile.AllocID{Func: "main", Block: 0, Site: 0}, 8)
	prof.Add(profile.AllocID{Func: "main", Block: 1, Site: 0}, 24)
	prof.Add(profile.AllocID{Func: "nonexistent", Block: 0, Site: 0}, 1)
	n := ApplyProfile(m, prof)
	if n != 2 {
		t.Fatalf("rewritten = %d, want 2", n)
	}
	main, _ := m.Func("main")
	if main.Blocks[0].Instrs[0].Op != ir.OpUAlloc {
		t.Error("profiled site 0 not rewritten")
	}
	if main.Blocks[0].Instrs[1].Op != ir.OpAlloc {
		t.Error("unprofiled site 1 rewritten")
	}
	if main.Blocks[1].Instrs[0].Op != ir.OpUAlloc {
		t.Error("profiled second-block site not rewritten")
	}
	// Idempotent: already-rewritten sites are not counted again.
	if n2 := ApplyProfile(m, prof); n2 != 0 {
		t.Errorf("second application rewrote %d", n2)
	}
}

func TestValidateAcceptsGoodModule(t *testing.T) {
	if err := Validate(parse(t)); err != nil {
		t.Errorf("valid module rejected: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{
			"no terminator",
			"module m\nfunc f() {\ne:\n  x = const 1\n}",
			"terminator",
		},
		{
			"bad branch target",
			"module m\nfunc f() {\ne:\n  br 1, nowhere, e\n}",
			"target",
		},
		{
			"bad jmp target",
			"module m\nfunc f() {\ne:\n  jmp gone\n}",
			"target",
		},
		{
			"undefined callee",
			"module m\nfunc f() {\ne:\n  call ghost()\n  ret\n}",
			"callee",
		},
		{
			"arity mismatch",
			"module m\nfunc g(a, b) {\ne:\n  ret\n}\nfunc f() {\ne:\n  call g(1)\n  ret\n}",
			"args",
		},
		{
			"mid-block terminator",
			"module m\nfunc f() {\ne:\n  ret\n  nop\n}",
			"ret not at block end",
		},
		{
			"undefined funcaddr",
			"module m\nfunc f() {\ne:\n  x = funcaddr ghost\n  ret\n}",
			"callee",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := pkir.Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			err = Validate(m)
			if err == nil {
				t.Fatal("invalid module accepted")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q lacks %q", err.Error(), c.wantSub)
			}
		})
	}
}

func TestValidateRetNotAtEnd(t *testing.T) {
	// Construct directly: a block whose terminator is fine but contains a
	// br in the middle.
	m := ir.NewModule("m")
	f := &ir.Func{Name: "f"}
	b := f.AddBlock("e")
	b.Instrs = []ir.Instr{
		{Op: ir.OpBr, Args: []ir.Operand{ir.Imm(1)}, Then: "e", Else: "e"},
		{Op: ir.OpRet},
	}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err == nil {
		t.Error("mid-block br accepted")
	}
}

func TestPipeline(t *testing.T) {
	m := parse(t)
	prof := profile.New()
	prof.Add(profile.AllocID{Func: "main", Block: 0, Site: 1}, 16)
	st, err := Pipeline(m, prof)
	if err != nil {
		t.Fatal(err)
	}
	if st.AllocSites != 4 || st.RewrittenMU != 1 || st.Gates != 2 || st.AddressTaken != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Pipeline on invalid module fails before mutating.
	bad, _ := pkir.Parse("module b\nfunc f() {\ne:\n  nop\n}")
	if _, err := Pipeline(bad, nil); err == nil {
		t.Error("pipeline accepted invalid module")
	}
}

func TestModuleHelpers(t *testing.T) {
	m := parse(t)
	AssignAllocIDs(m)
	var count int
	m.AllocSites(func(f *ir.Func, b *ir.Block, ins *ir.Instr) { count++ })
	if count != 4 {
		t.Errorf("AllocSites visited %d", count)
	}
	if _, ok := m.Func("main"); !ok {
		t.Error("Func lookup failed")
	}
	if _, ok := m.Func("ghost"); ok {
		t.Error("ghost lookup succeeded")
	}
}
