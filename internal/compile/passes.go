// Package compile implements PKRU-Safe's compiler passes over the IR
// (§4.1, §4.3): allocation-site identifier assignment, address-taken
// analysis, call-gate insertion along the annotated compartment boundary,
// and the profile-application pass that rewrites shared allocation sites
// to draw from the untrusted pool. A Pipeline bundles them in the order
// the paper's toolchain runs them.
package compile

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/profile"
)

// AssignAllocIDs gives every allocation instruction its (function,
// basic-block, call-site) AllocId — the tuple the provenance runtime
// records and the enforcement build matches against the profile. Site
// numbering is per block, in instruction order, so the ids are stable
// across rebuilds of an unchanged function. It returns the number of
// allocation sites in the module.
func AssignAllocIDs(m *ir.Module) int {
	total := 0
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			site := uint32(0)
			for i := range b.Instrs {
				switch b.Instrs[i].Op {
				case ir.OpAlloc, ir.OpUAlloc, ir.OpRealloc, ir.OpSAlloc, ir.OpUSAlloc:
					b.Instrs[i].Site = profile.AllocID{
						Func:  f.Name,
						Block: uint32(bi),
						Site:  site,
					}
					site++
					total++
				}
			}
		}
	}
	return total
}

// MarkAddressTaken sets Func.AddressTaken for every function whose address
// escapes via funcaddr. PKRU-Safe cannot reason about U's call graph, so
// every such trusted function is conservatively treated as a potential
// callback target and will receive an entry gate (§3.2).
func MarkAddressTaken(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op != ir.OpFuncAddr {
					continue
				}
				target, ok := m.Func(b.Instrs[i].Callee)
				if !ok {
					continue // Validate reports this
				}
				if !target.AddressTaken {
					target.AddressTaken = true
					n++
				}
			}
		}
	}
	return n
}

// InsertGates marks every direct call that crosses the annotated boundary
// with the gate it must pass through: T→U calls get forward gates at the
// call site (the transparent wrappers of §3.3), and U→T calls get reverse
// gates. Indirect calls are resolved at run time against the callee's
// NeedsEntryGate property, so this pass only handles OpCall. It returns
// the number of gates inserted.
func InsertGates(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				if ins.Op != ir.OpCall {
					continue
				}
				callee, ok := m.Func(ins.Callee)
				if !ok {
					continue
				}
				switch {
				case !f.Untrusted && callee.Untrusted:
					ins.Gate = ir.GateEnterUntrusted
					n++
				case f.Untrusted && !callee.Untrusted:
					ins.Gate = ir.GateEnterTrusted
					n++
				default:
					ins.Gate = ir.GateNone
				}
			}
		}
	}
	return n
}

// ApplyProfile rewrites OpAlloc instructions whose AllocId appears in the
// profile to OpUAlloc — the enforcement build's "update the call to the
// allocator to use memory from MU" (§4.3.1). AssignAllocIDs must run
// first. It returns the number of sites rewritten.
func ApplyProfile(m *ir.Module, prof *profile.Profile) int {
	n := 0
	m.AllocSites(func(_ *ir.Func, _ *ir.Block, ins *ir.Instr) {
		if !prof.Contains(ins.Site) {
			return
		}
		switch ins.Op {
		case ir.OpAlloc:
			ins.Op = ir.OpUAlloc
			n++
		case ir.OpSAlloc:
			// The §6 stack-protection prototype: profiled stack slots are
			// rewritten to the shared pool exactly like heap sites.
			ins.Op = ir.OpUSAlloc
			n++
		}
	})
	return n
}

// ValidationError aggregates the problems Validate found.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	if len(e.Problems) == 1 {
		return "compile: " + e.Problems[0]
	}
	return fmt.Sprintf("compile: %d problems, first: %s", len(e.Problems), e.Problems[0])
}

// Validate checks module well-formedness: every block ends in a
// terminator, branch targets and callees resolve, no instruction other
// than the last is a terminator, and entry functions exist for parameters
// referenced. It returns nil or a *ValidationError listing every problem.
func Validate(m *ir.Module) error {
	var probs []string
	addf := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			addf("func %s: no blocks", f.Name)
			continue
		}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 0 {
				addf("func %s: block %s is empty", f.Name, b.Name)
				continue
			}
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				last := i == len(b.Instrs)-1
				switch ins.Op {
				case ir.OpBr:
					if !last {
						addf("func %s: block %s: br not at block end (line %d)", f.Name, b.Name, ins.Line)
					}
					for _, tgt := range []string{ins.Then, ins.Else} {
						if _, ok := f.Block(tgt); !ok {
							addf("func %s: br target %q undefined (line %d)", f.Name, tgt, ins.Line)
						}
					}
				case ir.OpJmp:
					if !last {
						addf("func %s: block %s: jmp not at block end (line %d)", f.Name, b.Name, ins.Line)
					}
					if _, ok := f.Block(ins.Then); !ok {
						addf("func %s: jmp target %q undefined (line %d)", f.Name, ins.Then, ins.Line)
					}
				case ir.OpRet:
					if !last {
						addf("func %s: block %s: ret not at block end (line %d)", f.Name, b.Name, ins.Line)
					}
				case ir.OpCall, ir.OpFuncAddr:
					if _, ok := m.Func(ins.Callee); !ok {
						addf("func %s: undefined callee %q (line %d)", f.Name, ins.Callee, ins.Line)
					}
					if ins.Op == ir.OpCall {
						callee, ok := m.Func(ins.Callee)
						if ok && len(ins.Args) != len(callee.Params) {
							addf("func %s: call %s with %d args, want %d (line %d)",
								f.Name, ins.Callee, len(ins.Args), len(callee.Params), ins.Line)
						}
					}
				}
			}
			switch b.Terminator().Op {
			case ir.OpBr, ir.OpJmp, ir.OpRet:
			default:
				addf("func %s: block %s does not end in a terminator", f.Name, b.Name)
			}
		}
	}
	if len(probs) > 0 {
		return &ValidationError{Problems: probs}
	}
	return nil
}

// Stats summarizes what a Pipeline run did to the module.
type Stats struct {
	AllocSites   int // total allocation sites assigned ids
	RewrittenMU  int // sites rewritten to ualloc by the profile
	Gates        int // boundary-crossing direct calls gated
	AddressTaken int // functions newly marked address-taken
}

// Pipeline runs the passes in toolchain order. prof may be nil (profile
// and base builds); when present the profile is applied (enforcement and
// alloc builds).
func Pipeline(m *ir.Module, prof *profile.Profile) (Stats, error) {
	var st Stats
	if err := Validate(m); err != nil {
		return st, err
	}
	st.AllocSites = AssignAllocIDs(m)
	st.AddressTaken = MarkAddressTaken(m)
	st.Gates = InsertGates(m)
	if prof != nil {
		st.RewrittenMU = ApplyProfile(m, prof)
	}
	return st, nil
}
