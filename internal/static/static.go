// Package static implements the static-analysis alternative to dynamic
// profiling that the paper discusses (§4.3, §6): a whole-program,
// flow-insensitive, context-insensitive taint analysis over the IR that
// computes which allocation sites *may* flow into the untrusted
// compartment. Its output is a profile.Profile interchangeable with one
// recorded dynamically, so the enforcement build can consume either.
//
// The analysis is sound by construction — every flow the dynamic profiler
// can observe is included — at the cost of over-approximation: sites that
// reach U only on infeasible paths are shared too, exactly the
// precision/soundness trade-off §6 describes for state-of-the-art pointer
// analyses. Heap flows are modeled Andersen-style and field-insensitively
// (one content set per allocation site), indirect calls resolve to every
// address-taken function, and escape is closed transitively: anything
// reachable through an escaped pointer escapes.
package static

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/profile"
)

// siteSet is a set of allocation-site identifiers.
type siteSet map[profile.AllocID]struct{}

func (s siteSet) addAll(o siteSet) bool {
	changed := false
	for id := range o {
		if _, ok := s[id]; !ok {
			s[id] = struct{}{}
			changed = true
		}
	}
	return changed
}

func (s siteSet) add(id profile.AllocID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Stats reports what the analysis did.
type Stats struct {
	Iterations   int // fixpoint rounds
	TotalSites   int // allocation sites in the module
	EscapedSites int // sites that may reach U
}

// maxIterations bounds the fixpoint loop; the lattice is finite so this
// only guards against implementation bugs.
const maxIterations = 1000

// Analyze computes the sites that may be accessed from the untrusted
// compartment. The module must have AllocIds assigned and address-taken
// functions marked (compile.AssignAllocIDs + compile.MarkAddressTaken, or
// compile.Pipeline).
func Analyze(m *ir.Module) (*profile.Profile, Stats, error) {
	a := &analyzer{
		mod:      m,
		regs:     make(map[string]map[string]siteSet),
		contents: make(map[profile.AllocID]siteSet),
		returns:  make(map[string][]siteSet),
		escaped:  make(siteSet),
	}
	var st Stats
	missingIDs := false
	m.AllocSites(func(_ *ir.Func, _ *ir.Block, ins *ir.Instr) {
		if ins.Op == ir.OpAlloc || ins.Op == ir.OpSAlloc {
			if ins.Site.Func == "" {
				missingIDs = true
			}
			st.TotalSites++
		}
	})
	if missingIDs {
		return nil, st, errors.New("static: allocation sites lack AllocIds; run compile.AssignAllocIDs first")
	}
	for _, f := range m.Funcs {
		a.regs[f.Name] = make(map[string]siteSet)
	}
	a.addressTaken = addressTaken(m)

	for st.Iterations = 1; st.Iterations <= maxIterations; st.Iterations++ {
		a.changed = false
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if err := a.transfer(f, &b.Instrs[i]); err != nil {
						return nil, st, err
					}
				}
			}
		}
		a.closeEscape()
		if !a.changed {
			break
		}
	}
	if st.Iterations > maxIterations {
		return nil, st, errors.New("static: fixpoint did not converge")
	}

	prof := profile.New()
	for id := range a.escaped {
		prof.Add(id, 0)
	}
	st.EscapedSites = prof.Len()
	return prof, st, nil
}

func addressTaken(m *ir.Module) []*ir.Func {
	var out []*ir.Func
	for _, f := range m.Funcs {
		if f.AddressTaken {
			out = append(out, f)
		}
	}
	return out
}

type analyzer struct {
	mod          *ir.Module
	regs         map[string]map[string]siteSet // func -> reg -> sites
	contents     map[profile.AllocID]siteSet   // heap: site -> sites stored into it
	returns      map[string][]siteSet          // func -> per-result sites
	escaped      siteSet
	addressTaken []*ir.Func
	changed      bool
}

func (a *analyzer) reg(fn, name string) siteSet {
	s := a.regs[fn][name]
	if s == nil {
		s = make(siteSet)
		a.regs[fn][name] = s
	}
	return s
}

// eval returns the site set of an operand (immediates carry no sites).
func (a *analyzer) eval(fn string, o ir.Operand) siteSet {
	if o.IsImm {
		return nil
	}
	return a.reg(fn, o.Reg)
}

func (a *analyzer) flowInto(dst siteSet, src siteSet) {
	if dst.addAll(src) {
		a.changed = true
	}
}

func (a *analyzer) markEscaped(s siteSet) {
	for id := range s {
		if a.escaped.add(id) {
			a.changed = true
		}
	}
}

// closeEscape propagates escape through the heap: the contents of an
// escaped object are loadable by U and therefore escape too.
func (a *analyzer) closeEscape() {
	for {
		grew := false
		for id := range a.escaped {
			for inner := range a.contents[id] {
				if a.escaped.add(inner) {
					grew = true
					a.changed = true
				}
			}
		}
		if !grew {
			return
		}
	}
}

func (a *analyzer) transfer(f *ir.Func, ins *ir.Instr) error {
	fn := f.Name
	switch ins.Op {
	case ir.OpConst, ir.OpNop, ir.OpPrint, ir.OpBr, ir.OpJmp, ir.OpFree,
		ir.OpFuncAddr, ir.OpLoadB:
		// No site flow. (LoadB yields a byte, which cannot carry a
		// pointer in this word-oriented IR.)
		return nil

	case ir.OpBin:
		// Pointer arithmetic preserves provenance: the result may point
		// into any operand's objects.
		dst := a.reg(fn, ins.Dst[0])
		a.flowInto(dst, a.eval(fn, ins.Args[0]))
		a.flowInto(dst, a.eval(fn, ins.Args[1]))
		return nil

	case ir.OpAlloc, ir.OpSAlloc:
		// Heap sites and §6-prototype stack slots are classified alike.
		if a.reg(fn, ins.Dst[0]).add(ins.Site) {
			a.changed = true
		}
		return nil

	case ir.OpUAlloc, ir.OpUSAlloc:
		// Already in MU; nothing to protect, nothing to track.
		return nil

	case ir.OpRealloc:
		// Pool- and provenance-preserving: the result aliases the input.
		a.flowInto(a.reg(fn, ins.Dst[0]), a.eval(fn, ins.Args[0]))
		return nil

	case ir.OpLoad:
		dst := a.reg(fn, ins.Dst[0])
		for id := range a.eval(fn, ins.Args[0]) {
			if c := a.contents[id]; c != nil {
				a.flowInto(dst, c)
			}
		}
		return nil

	case ir.OpStore:
		val := a.eval(fn, ins.Args[1])
		if len(val) == 0 {
			return nil
		}
		for id := range a.eval(fn, ins.Args[0]) {
			c := a.contents[id]
			if c == nil {
				c = make(siteSet)
				a.contents[id] = c
			}
			a.flowInto(c, val)
		}
		return nil

	case ir.OpStoreB:
		return nil // byte stores cannot embed a pointer in this IR

	case ir.OpCall:
		callee, ok := a.mod.Func(ins.Callee)
		if !ok {
			return fmt.Errorf("static: undefined callee %q", ins.Callee)
		}
		a.flowCall(f, callee, ins.Args, ins.Dst)
		return nil

	case ir.OpICall:
		// Conservative: every address-taken function is a possible target.
		for _, callee := range a.addressTaken {
			a.flowCall(f, callee, ins.Args[1:], ins.Dst)
		}
		return nil

	case ir.OpRet:
		rets := a.returns[fn]
		for len(rets) < len(ins.Args) {
			rets = append(rets, make(siteSet))
		}
		a.returns[fn] = rets
		for i, arg := range ins.Args {
			a.flowInto(rets[i], a.eval(fn, arg))
		}
		return nil

	default:
		return fmt.Errorf("static: unhandled op %v", ins.Op)
	}
}

// flowCall propagates argument and return flows for one (possible) call
// edge, marking escapes at the trust boundary (§3.3's interfaces are the
// taint sinks).
func (a *analyzer) flowCall(caller *ir.Func, callee *ir.Func, args []ir.Operand, dst []string) {
	// Arguments flow into the callee's parameters.
	for i, p := range callee.Params {
		if i >= len(args) {
			break
		}
		a.flowInto(a.reg(callee.Name, p), a.eval(caller.Name, args[i]))
	}
	// The callee's returns flow into the caller's destinations.
	rets := a.returns[callee.Name]
	for i, d := range dst {
		if i < len(rets) {
			a.flowInto(a.reg(caller.Name, d), rets[i])
		}
	}
	// Trust-boundary sinks.
	if !caller.Untrusted && callee.Untrusted {
		// T passes data into U: every argument escapes.
		for _, arg := range args {
			a.markEscaped(a.eval(caller.Name, arg))
		}
	}
	if caller.Untrusted && !callee.Untrusted {
		// T returns data to a U caller: every result escapes. Arguments
		// flow U->T and carry no MT sites, so nothing to do for them.
		for _, r := range a.returns[callee.Name] {
			a.markEscaped(r)
		}
	}
}

// Delta compares a static result against a dynamically recorded profile.
type Delta struct {
	// OverApproximated: shared statically but never observed dynamically
	// (precision loss, costs heap-partitioning quality).
	OverApproximated []profile.AllocID
	// Missed: observed dynamically but not shared statically (a soundness
	// bug — must be empty for a sound analysis).
	Missed []profile.AllocID
}

// Compare computes the static-vs-dynamic delta of §6's discussion.
func Compare(static, dynamic *profile.Profile) Delta {
	var d Delta
	for _, id := range static.IDs() {
		if !dynamic.Contains(id) {
			d.OverApproximated = append(d.OverApproximated, id)
		}
	}
	for _, id := range dynamic.IDs() {
		if !static.Contains(id) {
			d.Missed = append(d.Missed, id)
		}
	}
	sort.Slice(d.OverApproximated, func(i, j int) bool {
		return d.OverApproximated[i].String() < d.OverApproximated[j].String()
	})
	sort.Slice(d.Missed, func(i, j int) bool {
		return d.Missed[i].String() < d.Missed[j].String()
	})
	return d
}
