package static

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/interp"
	"repro/internal/pkir"
	"repro/internal/profile"
)

// analyze parses, compiles and statically analyzes src.
func analyze(t *testing.T, src string) (*profile.Profile, Stats) {
	t.Helper()
	m, err := pkir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(m, nil); err != nil {
		t.Fatal(err)
	}
	prof, st, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	return prof, st
}

// dynamicProfile runs src under a Profiling build and returns the
// recorded profile.
func dynamicProfile(t *testing.T, src, entry string) *profile.Profile {
	t.Helper()
	m, err := pkir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(m, nil); err != nil {
		t.Fatal(err)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), core.Profiling, nil)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(entry); err != nil {
		t.Fatal(err)
	}
	prof, err := prog.RecordedProfile()
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

const directFlow = `
module direct
untrusted export func u_use(p) {
entry:
  v = load p
  ret v
}
export func main() {
entry:
  shared = alloc 8
  private = alloc 8
  store shared, 1
  store private, 2
  x = call u_use(shared)
  ret x
}
`

func TestDirectArgumentFlow(t *testing.T) {
	prof, st := analyze(t, directFlow)
	shared := profile.AllocID{Func: "main", Block: 0, Site: 0}
	private := profile.AllocID{Func: "main", Block: 0, Site: 1}
	if !prof.Contains(shared) {
		t.Error("shared site not detected")
	}
	if prof.Contains(private) {
		t.Error("private site wrongly shared")
	}
	if st.TotalSites != 2 || st.EscapedSites != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestHeapIndirection: an object reachable through the field of a shared
// object escapes too (the "objects reachable through the fields of
// aggregate types" case of §3.4).
func TestHeapIndirection(t *testing.T) {
	src := `
module indirect
untrusted export func u_deep(box) {
entry:
  inner = load box
  v = load inner
  ret v
}
export func main() {
entry:
  box = alloc 8
  inner = alloc 8
  hidden = alloc 8
  store inner, 42
  store box, inner
  x = call u_deep(box)
  ret x
}
`
	prof, _ := analyze(t, src)
	box := profile.AllocID{Func: "main", Block: 0, Site: 0}
	inner := profile.AllocID{Func: "main", Block: 0, Site: 1}
	hidden := profile.AllocID{Func: "main", Block: 0, Site: 2}
	if !prof.Contains(box) || !prof.Contains(inner) {
		t.Errorf("escape not closed through heap: %v", prof.IDs())
	}
	if prof.Contains(hidden) {
		t.Error("unrelated site shared")
	}
	// Dynamic agrees here (all paths executed).
	dyn := dynamicProfile(t, src, "main")
	d := Compare(prof, dyn)
	if len(d.Missed) != 0 {
		t.Errorf("soundness violation: %v", d.Missed)
	}
}

// TestReturnFlowToUntrusted: a trusted callback returning a pointer to a
// U caller shares the pointee.
func TestReturnFlowToUntrusted(t *testing.T) {
	src := `
module retflow
export func make_buf() {
entry:
  b = alloc 16
  ret b
}
untrusted export func u_run(fp) {
entry:
  buf = icall fp()
  v = load buf
  ret v
}
export func main() {
entry:
  fp = funcaddr make_buf
  x = call u_run(fp)
  ret x
}
`
	prof, _ := analyze(t, src)
	if !prof.Contains(profile.AllocID{Func: "make_buf", Block: 0, Site: 0}) {
		t.Errorf("callback return flow missed: %v", prof.IDs())
	}
	dyn := dynamicProfile(t, src, "main")
	if d := Compare(prof, dyn); len(d.Missed) != 0 {
		t.Errorf("soundness violation: %v", d.Missed)
	}
}

// TestOverApproximationOnDeadPath: the static analysis shares a site that
// only flows to U on a branch never taken at run time — §6's precision
// trade-off — while the dynamic profile stays empty.
func TestOverApproximationOnDeadPath(t *testing.T) {
	src := `
module dead
untrusted export func u_use(p) {
entry:
  v = load p
  ret v
}
export func main() {
entry:
  buf = alloc 8
  cond = const 0
  br cond, taken, skip
taken:
  x = call u_use(buf)
  jmp skip
skip:
  v = load buf
  ret v
}
`
	static, _ := analyze(t, src)
	dyn := dynamicProfile(t, src, "main")
	site := profile.AllocID{Func: "main", Block: 0, Site: 0}
	if !static.Contains(site) {
		t.Error("flow-insensitive analysis must include the dead-path flow")
	}
	if dyn.Contains(site) {
		t.Error("dynamic profile should not observe the dead path")
	}
	d := Compare(static, dyn)
	if len(d.OverApproximated) != 1 || len(d.Missed) != 0 {
		t.Errorf("delta = %+v", d)
	}
}

// TestPointerArithmeticPreservesProvenance: a derived pointer (base +
// offset) passed to U shares the base object.
func TestPointerArithmeticPreservesProvenance(t *testing.T) {
	src := `
module arith
untrusted export func u_poke(p) {
entry:
  store p, 7
  ret
}
export func main() {
entry:
  arr = alloc 64
  mid = add arr, 32
  call u_poke(mid)
  v = load arr
  ret v
}
`
	prof, _ := analyze(t, src)
	if !prof.Contains(profile.AllocID{Func: "main", Block: 0, Site: 0}) {
		t.Errorf("interior-pointer flow missed: %v", prof.IDs())
	}
}

// TestStoreIntoEscapedObjectLater: writing a private pointer into an
// already-escaped object shares the pointee (fixpoint ordering).
func TestStoreIntoEscapedObjectLater(t *testing.T) {
	src := `
module late
untrusted export func u_keep(p) {
entry:
  ret
}
export func main() {
entry:
  box = alloc 8
  call u_keep(box)
  late = alloc 8
  store box, late
  ret
}
`
	prof, _ := analyze(t, src)
	late := profile.AllocID{Func: "main", Block: 0, Site: 1}
	if !prof.Contains(late) {
		t.Errorf("late store into escaped object missed: %v", prof.IDs())
	}
}

// TestUallocNotTracked: explicit untrusted allocations are already in MU
// and never appear in the profile.
func TestUallocNotTracked(t *testing.T) {
	src := `
module u
untrusted export func u_use(p) {
entry:
  v = load p
  ret v
}
export func main() {
entry:
  b = ualloc 8
  x = call u_use(b)
  ret x
}
`
	prof, st := analyze(t, src)
	if prof.Len() != 0 {
		t.Errorf("ualloc tracked: %v", prof.IDs())
	}
	if st.TotalSites != 0 {
		t.Errorf("ualloc counted as a trusted site: %+v", st)
	}
}

// TestStaticProfileDrivesEnforcement: the static profile can be consumed
// by the enforcement build exactly like a dynamic one, and the program
// runs clean under MPK.
func TestStaticProfileDrivesEnforcement(t *testing.T) {
	m, err := pkir.Parse(directFlow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := compile.Pipeline(m, nil); err != nil {
		t.Fatal(err)
	}
	prof, _, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	n := compile.ApplyProfile(m, prof)
	if n != 1 {
		t.Fatalf("rewrote %d sites, want 1", n)
	}
	prog, err := core.NewProgram(ffi.NewRegistry(), core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := interp.New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mach.Run("main")
	if err != nil {
		t.Fatalf("statically instrumented run crashed: %v", err)
	}
	if res[0] != 1 {
		t.Errorf("result = %d", res[0])
	}
}

// TestSoundnessAcrossCorpus: on every corpus program, the dynamic profile
// is a subset of the static one.
func TestSoundnessAcrossCorpus(t *testing.T) {
	corpus := []string{directFlow, `
module chain
untrusted export func u(p) {
entry:
  v = load p
  ret v
}
func helper(q) {
entry:
  r = call u(q)
  ret r
}
export func main() {
entry:
  a = alloc 8
  store a, 5
  x = call helper(a)
  ret x
}
`}
	for i, src := range corpus {
		static, _ := analyze(t, src)
		dyn := dynamicProfile(t, src, "main")
		if d := Compare(static, dyn); len(d.Missed) != 0 {
			t.Errorf("program %d: soundness violation: %v", i, d.Missed)
		}
	}
}

func TestAnalyzeRequiresAllocIDs(t *testing.T) {
	m, err := pkir.Parse(directFlow)
	if err != nil {
		t.Fatal(err)
	}
	// No pipeline: sites lack ids.
	if _, _, err := Analyze(m); err == nil {
		t.Error("analysis accepted module without AllocIds")
	}
}

// TestICallMayTargetUntrusted: an indirect call from T whose possible
// targets include an untrusted function taints the arguments — the
// conservative icall resolution the analysis documents.
func TestICallMayTargetUntrusted(t *testing.T) {
	src := `
module icallu
untrusted export func u_sink(p) {
entry:
  v = load p
  ret v
}
export func main() {
entry:
  fp = funcaddr u_sink
  buf = alloc 8
  r = icall fp(buf)
  ret r
}
`
	prof, _ := analyze(t, src)
	if !prof.Contains(profile.AllocID{Func: "main", Block: 0, Site: 0}) {
		t.Errorf("icall-to-untrusted flow missed: %v", prof.IDs())
	}
	dyn := dynamicProfile(t, src, "main")
	if d := Compare(prof, dyn); len(d.Missed) != 0 {
		t.Errorf("soundness violation: %v", d.Missed)
	}
}
