// Package pkalloc is the compartment-aware allocator at the heart of
// PKRU-Safe's heap partitioning (§4.4). It manages two disjoint pools:
//
//   - MT, the trusted pool, reserved up front as one large region whose
//     pages carry a dedicated protection key and are served by a
//     jemalloc-style arena;
//   - MU, the untrusted/shared pool, tagged with the default key 0 so it is
//     accessible from every compartment, served by a libc-style free list.
//
// Pages never migrate between the pools, reallocation never changes an
// object's pool, and each allocator's internal bookkeeping stays within its
// own compartment — the three properties §3.4 identifies as necessary to
// make page-granularity MPK enforcement sound for object-granularity
// sharing decisions.
package pkalloc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/heap"
	"repro/internal/mpk"
	"repro/internal/vm"
)

// Compartment identifies which pool an object was allocated from.
type Compartment uint8

const (
	// Trusted is the MT pool: private to the safe language.
	Trusted Compartment = iota
	// Untrusted is the MU pool: shared with (and writable by) unsafe code.
	Untrusted
)

func (c Compartment) String() string {
	if c == Trusted {
		return "MT"
	}
	return "MU"
}

// Defaults mirroring the paper: MT reserves 46 bits of address space at
// startup via on-demand-paged mmap, "which has virtually no cost if those
// pages are never used".
const (
	DefaultTrustedBase   vm.Addr = 0x2000_0000_0000
	DefaultTrustedSize   uint64  = 1 << 46
	DefaultUntrustedBase vm.Addr = 0x7000_0000_0000
	DefaultUntrustedSize uint64  = 1 << 40
	// DefaultTrustedKey is the protection key tagging MT pages. MU pages
	// keep key 0, the architectural default accessible to every PKRU value
	// a gate installs.
	DefaultTrustedKey mpk.Key = 1
)

// ErrNotOwned is returned for addresses outside both pools.
var ErrNotOwned = errors.New("pkalloc: address not owned by either pool")

// Config parameterizes New. Zero-valued fields take the defaults above.
type Config struct {
	Space         *vm.Space
	TrustedBase   vm.Addr
	TrustedSize   uint64
	UntrustedBase vm.Addr
	UntrustedSize uint64
	TrustedKey    mpk.Key
}

// Stats reports per-pool activity, the source of the paper's %MU column.
type Stats struct {
	Trusted   heap.Stats
	Untrusted heap.Stats
}

// UntrustedShare returns the fraction of cumulatively allocated bytes that
// came from MU, in [0, 1].
func (s Stats) UntrustedShare() float64 {
	total := s.Trusted.BytesTotal + s.Untrusted.BytesTotal
	if total == 0 {
		return 0
	}
	return float64(s.Untrusted.BytesTotal) / float64(total)
}

// Allocator is the split allocator. It is safe for concurrent use.
type Allocator struct {
	mu        sync.Mutex
	space     *vm.Space
	trusted   heap.Allocator
	untrusted heap.Allocator
	regionT   *vm.Region
	regionU   *vm.Region
	key       mpk.Key
	uEpoch    uint64 // incremented by each untrusted-pool quarantine

	// Per-domain pools (see domains.go); nil until the first AddDomainPool.
	pools        map[string]*domainPool
	byBase       map[vm.Addr]*domainPool // pool by region base, for O(1) Free
	freeRegions  []*vm.Region            // scrubbed regions awaiting reuse
	nextPoolBase vm.Addr
}

// New reserves both pools in cfg.Space and returns the allocator.
func New(cfg Config) (*Allocator, error) {
	if cfg.Space == nil {
		return nil, errors.New("pkalloc: Config.Space is required")
	}
	if cfg.TrustedBase == 0 {
		cfg.TrustedBase = DefaultTrustedBase
	}
	if cfg.TrustedSize == 0 {
		cfg.TrustedSize = DefaultTrustedSize
	}
	if cfg.UntrustedBase == 0 {
		cfg.UntrustedBase = DefaultUntrustedBase
	}
	if cfg.UntrustedSize == 0 {
		cfg.UntrustedSize = DefaultUntrustedSize
	}
	if cfg.TrustedKey == 0 {
		cfg.TrustedKey = DefaultTrustedKey
	}
	rT, err := cfg.Space.Reserve("pkalloc/MT", cfg.TrustedBase, cfg.TrustedSize, cfg.TrustedKey)
	if err != nil {
		return nil, fmt.Errorf("pkalloc: reserving MT: %w", err)
	}
	rU, err := cfg.Space.Reserve("pkalloc/MU", cfg.UntrustedBase, cfg.UntrustedSize, 0)
	if err != nil {
		return nil, fmt.Errorf("pkalloc: reserving MU: %w", err)
	}
	return &Allocator{
		space:     cfg.Space,
		trusted:   heap.NewArena(heap.NewPagePool(rT)),
		untrusted: heap.NewFreeList(heap.NewPagePool(rU), cfg.Space),
		regionT:   rT,
		regionU:   rU,
		key:       cfg.TrustedKey,
	}, nil
}

// TrustedKey returns the protection key tagging MT pages.
func (a *Allocator) TrustedKey() mpk.Key { return a.key }

// TrustedRegion returns the MT reservation.
func (a *Allocator) TrustedRegion() *vm.Region { return a.regionT }

// UntrustedRegion returns the MU reservation.
func (a *Allocator) UntrustedRegion() *vm.Region { return a.regionU }

// Space returns the address space both pools live in.
func (a *Allocator) Space() *vm.Space { return a.space }

// Alloc serves an allocation from MT (the __rust_alloc path).
func (a *Allocator) Alloc(size uint64) (vm.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.trusted.Alloc(size)
}

// UntrustedAlloc serves an allocation from MU (the __rust_untrusted_alloc
// path emitted by the enforcement build for profiled allocation sites).
func (a *Allocator) UntrustedAlloc(size uint64) (vm.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.untrusted.Alloc(size)
}

// AllocIn serves an allocation from the named compartment.
func (a *Allocator) AllocIn(c Compartment, size uint64) (vm.Addr, error) {
	if c == Untrusted {
		return a.UntrustedAlloc(size)
	}
	return a.Alloc(size)
}

// Free releases an allocation from whichever pool owns it.
func (a *Allocator) Free(addr vm.Addr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	alloc, _, err := a.ownerLocked(addr)
	if err != nil {
		return err
	}
	return alloc.Free(addr)
}

// Realloc resizes an allocation, always staying within the pool the base
// pointer originated from — the modified __rust_realloc contract that makes
// provenance tracking across reallocation sound (§4.2, §4.3.1).
func (a *Allocator) Realloc(addr vm.Addr, newSize uint64) (vm.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	alloc, _, err := a.ownerLocked(addr)
	if err != nil {
		return 0, err
	}
	oldSize, ok := alloc.UsableSize(addr)
	if !ok {
		return 0, fmt.Errorf("pkalloc: realloc of dead allocation %v", addr)
	}
	if newSize <= oldSize {
		return addr, nil // shrink in place
	}
	newAddr, err := alloc.Alloc(newSize)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, oldSize)
	if err := a.space.Peek(addr, buf); err != nil {
		return 0, err
	}
	if err := a.space.Poke(newAddr, buf); err != nil {
		return 0, err
	}
	if err := alloc.Free(addr); err != nil {
		return 0, err
	}
	return newAddr, nil
}

// UsableSize returns the capacity of the allocation containing addr.
func (a *Allocator) UsableSize(addr vm.Addr) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	alloc, _, err := a.ownerLocked(addr)
	if err != nil {
		return 0, false
	}
	return alloc.UsableSize(addr)
}

// CompartmentOf reports which pool owns addr.
func (a *Allocator) CompartmentOf(addr vm.Addr) (Compartment, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, c, err := a.ownerLocked(addr)
	return c, err == nil
}

func (a *Allocator) ownerLocked(addr vm.Addr) (heap.Allocator, Compartment, error) {
	switch {
	case a.regionT.Contains(addr):
		return a.trusted, Trusted, nil
	case a.regionU.Contains(addr):
		return a.untrusted, Untrusted, nil
	}
	// Domain pools resolve through the space's region index, not a scan
	// over every pool — Free must stay O(log regions) under tenant churn.
	if alloc, ok := a.domainOwnerLocked(addr); ok {
		return alloc, Untrusted, nil
	}
	return nil, 0, fmt.Errorf("%w: %v", ErrNotOwned, addr)
}

// QuarantineUntrusted resets the MU pool after a compartment failure: the
// epoch is bumped, every resident MU page is scrubbed to zero (a
// compromised untrusted library must not leave poisoned data for the next
// request), and the pool's allocator is replaced with a fresh free list
// over the same reservation. All outstanding MU allocations are thereby
// invalidated — subsequent Free/Realloc on a pre-quarantine MU pointer
// fails like any bad free. MT is untouched: quarantine rehabilitates the
// sandbox heap, never the trusted one.
func (a *Allocator) QuarantineUntrusted() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.space.ZeroResident(a.regionU.Base, a.regionU.Size); err != nil {
		return fmt.Errorf("pkalloc: quarantine MU: %w", err)
	}
	a.untrusted = heap.NewFreeList(heap.NewPagePool(a.regionU), a.space)
	a.uEpoch++
	return nil
}

// UntrustedEpoch returns how many times the MU pool has been quarantined.
// Holders of MU pointers can compare epochs to detect that their pointers
// were invalidated by a reset.
func (a *Allocator) UntrustedEpoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.uEpoch
}

// Stats returns per-pool counters.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{Trusted: a.trusted.Stats(), Untrusted: a.untrusted.Stats()}
}
