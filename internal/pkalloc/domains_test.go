package pkalloc

import (
	"fmt"
	"testing"

	"repro/internal/vm"
)

func newDomainAllocator(t testing.TB) *Allocator {
	t.Helper()
	a, err := New(Config{Space: vm.NewSpace()})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDomainPoolLifecycle(t *testing.T) {
	a := newDomainAllocator(t)
	r, err := a.AddDomainPool("js", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddDomainPool("js", 5); err == nil {
		t.Error("duplicate pool accepted")
	}
	addr, err := a.DomainAlloc("js", 64)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(addr) {
		t.Errorf("allocation %v outside pool region %v", addr, r.Base)
	}
	if c, ok := a.CompartmentOf(addr); !ok || c != Untrusted {
		t.Errorf("CompartmentOf(%v) = %v, %v", addr, c, ok)
	}
	if err := a.Free(addr); err != nil {
		t.Errorf("Free via region lookup: %v", err)
	}
	if err := a.RemoveDomainPool("js"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.DomainAlloc("js", 64); err == nil {
		t.Error("alloc from removed pool accepted")
	}
	if err := a.RemoveDomainPool("js"); err == nil {
		t.Error("double remove accepted")
	}
}

// TestDomainPoolRegionRecycling: churn must not leak address-space
// reservations — vm.Space has no unreserve, so removed pools' regions
// are reused by the next add.
func TestDomainPoolRegionRecycling(t *testing.T) {
	a := newDomainAllocator(t)
	r1, err := a.AddDomainPool("first", 5)
	if err != nil {
		t.Fatal(err)
	}
	// Residue check: scrub on removal.
	addr, err := a.DomainAlloc("first", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Space().Poke(addr, []byte{0xaa, 0xbb, 0xcc, 0xdd, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveDomainPool("first"); err != nil {
		t.Fatal(err)
	}
	r2, err := a.AddDomainPool("second", 6)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != r1.Base {
		t.Errorf("recycled pool base = %v, want %v reused", r2.Base, r1.Base)
	}
	if k, ok := a.Space().PKeyAt(addr); !ok || k != 6 {
		t.Errorf("recycled pool page key = %v, want retagged 6", k)
	}
	buf := make([]byte, 8)
	if err := a.Space().Peek(addr, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("recycled pool leaked prior tenant's bytes: % x", buf)
		}
	}
	regions := len(a.Space().Regions())
	for i := 0; i < 50; i++ {
		if err := a.RemoveDomainPool("second"); i == 0 && err != nil {
			t.Fatal(err)
		}
		if _, err := a.AddDomainPool("second", 6); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.Space().Regions()); got != regions {
		t.Errorf("region count grew %d -> %d under churn", regions, got)
	}
}

func TestDomainFreeResolvesOwnerViaRegionIndex(t *testing.T) {
	a := newDomainAllocator(t)
	const pools = 32
	addrs := make([]vm.Addr, pools)
	for i := 0; i < pools; i++ {
		name := fmt.Sprintf("p%d", i)
		if _, err := a.AddDomainPool(name, 5); err != nil {
			t.Fatal(err)
		}
		addr, err := a.DomainAlloc(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	for i, addr := range addrs {
		if err := a.Free(addr); err != nil {
			t.Errorf("Free from pool %d: %v", i, err)
		}
	}
	if err := a.Free(0x1234); err == nil {
		t.Error("free of unowned address accepted")
	}
}
