package pkalloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mpk"
	"repro/internal/vm"
)

func newAlloc(t *testing.T) (*vm.Space, *Allocator) {
	t.Helper()
	s := vm.NewSpace()
	a, err := New(Config{Space: s})
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without Space accepted")
	}
	s := vm.NewSpace()
	if _, err := New(Config{Space: s, TrustedBase: DefaultUntrustedBase}); err == nil {
		t.Error("overlapping pools accepted")
	}
}

func TestDefaultsAndRegions(t *testing.T) {
	_, a := newAlloc(t)
	if a.TrustedKey() != DefaultTrustedKey {
		t.Errorf("trusted key = %v", a.TrustedKey())
	}
	rT, rU := a.TrustedRegion(), a.UntrustedRegion()
	if rT.Size != DefaultTrustedSize {
		t.Errorf("MT size = %#x, want 46-bit reservation %#x", rT.Size, DefaultTrustedSize)
	}
	if rT.PKey == rU.PKey {
		t.Error("MT and MU must carry different protection keys")
	}
	if rU.PKey != 0 {
		t.Errorf("MU key = %v, want default key 0", rU.PKey)
	}
}

func TestPoolPlacement(t *testing.T) {
	_, a := newAlloc(t)
	at, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	au, err := a.UntrustedAlloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := a.CompartmentOf(at); !ok || c != Trusted {
		t.Errorf("CompartmentOf(trusted) = %v, %v", c, ok)
	}
	if c, ok := a.CompartmentOf(au); !ok || c != Untrusted {
		t.Errorf("CompartmentOf(untrusted) = %v, %v", c, ok)
	}
	if _, ok := a.CompartmentOf(0x1000); ok {
		t.Error("CompartmentOf(outside) should fail")
	}
}

func TestAllocIn(t *testing.T) {
	_, a := newAlloc(t)
	at, err := a.AllocIn(Trusted, 64)
	if err != nil || !a.TrustedRegion().Contains(at) {
		t.Errorf("AllocIn(Trusted) = %v, %v", at, err)
	}
	au, err := a.AllocIn(Untrusted, 64)
	if err != nil || !a.UntrustedRegion().Contains(au) {
		t.Errorf("AllocIn(Untrusted) = %v, %v", au, err)
	}
}

func TestMTPagesCarryTrustedKey(t *testing.T) {
	s, a := newAlloc(t)
	at, _ := a.Alloc(64)
	au, _ := a.UntrustedAlloc(64)
	th := vm.NewThread(s, nil)
	// Touch both so pages become resident, then verify their keys.
	if err := th.Store8(at, 1); err != nil {
		t.Fatal(err)
	}
	if err := th.Store8(au, 1); err != nil {
		t.Fatal(err)
	}
	if k, _ := s.PKeyAt(at); k != a.TrustedKey() {
		t.Errorf("MT page key = %v, want %v", k, a.TrustedKey())
	}
	if k, _ := s.PKeyAt(au); k != 0 {
		t.Errorf("MU page key = %v, want 0", k)
	}
	// With MT locked out, MU stays reachable and MT faults.
	th.SetRights(mpk.PermitAll.With(a.TrustedKey(), mpk.DenyAll))
	if _, err := th.Load8(au); err != nil {
		t.Errorf("MU access under locked PKRU failed: %v", err)
	}
	if _, err := th.Load8(at); err == nil {
		t.Error("MT access under locked PKRU should fault")
	}
}

func TestFreeDispatchesByPool(t *testing.T) {
	_, a := newAlloc(t)
	at, _ := a.Alloc(100)
	au, _ := a.UntrustedAlloc(100)
	if err := a.Free(at); err != nil {
		t.Errorf("Free(MT): %v", err)
	}
	if err := a.Free(au); err != nil {
		t.Errorf("Free(MU): %v", err)
	}
	if err := a.Free(0x42); !errors.Is(err, ErrNotOwned) {
		t.Errorf("Free(outside) = %v, want ErrNotOwned", err)
	}
	st := a.Stats()
	if st.Trusted.Frees != 1 || st.Untrusted.Frees != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReallocStaysInPool is the core provenance invariant: reallocation
// never migrates an object between MT and MU (§4.2).
func TestReallocStaysInPool(t *testing.T) {
	s, a := newAlloc(t)
	for _, c := range []Compartment{Trusted, Untrusted} {
		addr, err := a.AllocIn(c, 40)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Poke(addr, []byte("hello, compartment!")); err != nil {
			t.Fatal(err)
		}
		cur := addr
		for _, sz := range []uint64{10, 200, 5000, 100000, 3} {
			next, err := a.Realloc(cur, sz)
			if err != nil {
				t.Fatalf("Realloc(%v -> %d): %v", cur, sz, err)
			}
			got, ok := a.CompartmentOf(next)
			if !ok || got != c {
				t.Fatalf("realloc moved object from %v to %v", c, got)
			}
			cur = next
		}
		buf := make([]byte, 3) // last realloc shrank to >= 3 usable
		if err := s.Peek(cur, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != "hel" {
			t.Errorf("payload lost across reallocs: %q", buf)
		}
		if err := a.Free(cur); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReallocOfDeadPointer(t *testing.T) {
	_, a := newAlloc(t)
	addr, _ := a.Alloc(10)
	if err := a.Free(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Realloc(addr, 50); err == nil {
		t.Error("realloc of freed pointer accepted")
	}
	if _, err := a.Realloc(0x1234, 50); !errors.Is(err, ErrNotOwned) {
		t.Errorf("realloc outside pools = %v", err)
	}
}

func TestUsableSize(t *testing.T) {
	_, a := newAlloc(t)
	at, _ := a.Alloc(100)
	if us, ok := a.UsableSize(at); !ok || us < 100 {
		t.Errorf("UsableSize = %d, %v", us, ok)
	}
	if _, ok := a.UsableSize(0x99); ok {
		t.Error("UsableSize outside pools should fail")
	}
}

func TestUntrustedShare(t *testing.T) {
	_, a := newAlloc(t)
	if got := a.Stats().UntrustedShare(); got != 0 {
		t.Errorf("empty share = %v", got)
	}
	if _, err := a.Alloc(3000); err != nil {
		t.Fatal(err)
	}
	if _, err := a.UntrustedAlloc(1000); err != nil {
		t.Fatal(err)
	}
	share := a.Stats().UntrustedShare()
	if share <= 0 || share >= 1 {
		t.Errorf("share = %v, want in (0,1)", share)
	}
	// Requested 1000 of ~4096 total; the arena rounds 3000 up to its size
	// class, so the share lands near but not exactly at 0.25.
	if share < 0.15 || share > 0.4 {
		t.Errorf("share = %v, implausible for 1000/4096 split", share)
	}
}

// Property: pool disjointness under arbitrary interleaved traffic — every
// address from Alloc is in MT, every address from UntrustedAlloc is in MU,
// and no address is in both.
func TestPoolDisjointnessProperty(t *testing.T) {
	s := vm.NewSpace()
	a, err := New(Config{Space: s})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%50) + 1
		var live []vm.Addr
		for i := 0; i < ops; i++ {
			sz := uint64(rng.Intn(9000) + 1)
			var addr vm.Addr
			var err error
			want := Trusted
			if rng.Intn(2) == 0 {
				want = Untrusted
			}
			addr, err = a.AllocIn(want, sz)
			if err != nil {
				return false
			}
			inT := a.TrustedRegion().Contains(addr)
			inU := a.UntrustedRegion().Contains(addr)
			if inT == inU { // both or neither
				return false
			}
			if (want == Trusted) != inT {
				return false
			}
			live = append(live, addr)
			if len(live) > 3 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				if a.Free(live[j]) != nil {
					return false
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for _, addr := range live {
			if a.Free(addr) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	_, a := newAlloc(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 300; i++ {
				c := Compartment(uint8(g+i) % 2)
				addr, err := a.AllocIn(c, uint64(i%500+1))
				if err != nil {
					done <- err
					return
				}
				if err := a.Free(addr); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.Trusted.BytesLive != 0 || st.Untrusted.BytesLive != 0 {
		t.Errorf("live bytes after drain: %+v", st)
	}
}

func TestCompartmentString(t *testing.T) {
	if Trusted.String() != "MT" || Untrusted.String() != "MU" {
		t.Error("compartment names wrong")
	}
}

func TestQuarantineUntrustedResetsPool(t *testing.T) {
	s, a := newAlloc(t)
	mt, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke(mt, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	mu, err := a.UntrustedAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Poke(mu, []byte{0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	if e := a.UntrustedEpoch(); e != 0 {
		t.Fatalf("initial epoch = %d, want 0", e)
	}

	if err := a.QuarantineUntrusted(); err != nil {
		t.Fatalf("QuarantineUntrusted: %v", err)
	}
	if e := a.UntrustedEpoch(); e != 1 {
		t.Errorf("epoch after quarantine = %d, want 1", e)
	}
	// Pre-quarantine MU pointer is invalid and its bytes scrubbed.
	if err := a.Free(mu); err == nil {
		t.Error("free of pre-quarantine MU pointer succeeded")
	}
	buf := make([]byte, 2)
	if err := s.Peek(mu, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[1] != 0 {
		t.Errorf("MU bytes after quarantine = %v, want scrubbed", buf)
	}
	// MT is untouched.
	if err := s.Peek(mt, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 {
		t.Errorf("MT bytes after quarantine = %v, want intact", buf)
	}
	if err := a.Free(mt); err != nil {
		t.Errorf("MT free after quarantine: %v", err)
	}
	// The fresh pool serves allocations again, from the region base.
	mu2, err := a.UntrustedAlloc(64)
	if err != nil {
		t.Fatalf("MU alloc after quarantine: %v", err)
	}
	if !a.UntrustedRegion().Contains(mu2) {
		t.Errorf("post-quarantine allocation %v outside MU", mu2)
	}
	if err := a.Free(mu2); err != nil {
		t.Errorf("free after quarantine: %v", err)
	}
}
