package pkalloc

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/mpk"
	"repro/internal/vm"
)

// ErrNoDomainPool is returned when a per-domain operation names a pool
// that does not exist. Supervision distinguishes it from scrub failures:
// an unresolvable domain escalates to the global quarantine tier, a
// failing scrub is terminal.
var ErrNoDomainPool = errors.New("pkalloc: no such domain pool")

// Per-domain pool defaults. Each pool is a fixed-size slice of address
// space carved from a dedicated window above MU; the window is far larger
// than any realistic tenant count needs because reservations are
// on-demand-paged and cost nothing until touched.
const (
	DefaultDomainPoolBase vm.Addr = 0x7400_0000_0000
	DefaultDomainPoolSize uint64  = 1 << 32
)

// domainPool is one tenant's private untrusted heap.
type domainPool struct {
	name   string
	region *vm.Region
	alloc  heap.Allocator
	epoch  uint64 // incremented by each per-domain quarantine
}

// ensureDomainsLocked lazily initializes the domain-pool bookkeeping so
// two-compartment users of the allocator pay nothing for it.
func (a *Allocator) ensureDomainsLocked() {
	if a.pools == nil {
		a.pools = make(map[string]*domainPool)
		a.byBase = make(map[vm.Addr]*domainPool)
		a.nextPoolBase = DefaultDomainPoolBase
	}
}

// AddDomainPool reserves (or recycles) a pool-sized region for the named
// domain, tags its pages with key, and serves it with a fresh free list.
// Removed pools' regions are reused before new address space is consumed,
// so domain churn does not leak reservations — vm.Space has no unreserve.
func (a *Allocator) AddDomainPool(name string, key mpk.Key) (*vm.Region, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ensureDomainsLocked()
	if _, ok := a.pools[name]; ok {
		return nil, fmt.Errorf("pkalloc: domain pool %q already exists", name)
	}
	var region *vm.Region
	if n := len(a.freeRegions); n > 0 {
		region = a.freeRegions[n-1]
		a.freeRegions = a.freeRegions[:n-1]
		if err := a.space.SetPKey(region.Base, region.Size, key); err != nil {
			a.freeRegions = append(a.freeRegions, region)
			return nil, fmt.Errorf("pkalloc: retag recycled pool: %w", err)
		}
	} else {
		r, err := a.space.Reserve(fmt.Sprintf("pkalloc/dompool%d", len(a.byBase)),
			a.nextPoolBase, DefaultDomainPoolSize, key)
		if err != nil {
			return nil, fmt.Errorf("pkalloc: reserving domain pool: %w", err)
		}
		a.nextPoolBase += vm.Addr(DefaultDomainPoolSize)
		region = r
	}
	p := &domainPool{
		name:   name,
		region: region,
		alloc:  heap.NewFreeList(heap.NewPagePool(region), a.space),
	}
	a.pools[name] = p
	a.byBase[region.Base] = p
	return region, nil
}

// RemoveDomainPool scrubs the named pool — every resident page zeroed, the
// same hygiene QuarantineUntrusted applies to MU — and parks its region on
// the recycle list for the next AddDomainPool. Outstanding pointers into
// the pool are invalidated; the caller retags the region (vkey parks it on
// the inactive key) so stale pointers fault rather than read the next
// tenant's data.
func (a *Allocator) RemoveDomainPool(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return fmt.Errorf("pkalloc: no domain pool %q", name)
	}
	if err := a.space.ZeroResident(p.region.Base, p.region.Size); err != nil {
		return fmt.Errorf("pkalloc: scrub domain pool %q: %w", name, err)
	}
	delete(a.pools, name)
	delete(a.byBase, p.region.Base)
	a.freeRegions = append(a.freeRegions, p.region)
	return nil
}

// DomainAlloc serves an allocation from the named domain pool.
func (a *Allocator) DomainAlloc(name string, size uint64) (vm.Addr, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return 0, fmt.Errorf("pkalloc: no domain pool %q", name)
	}
	return p.alloc.Alloc(size)
}

// QuarantineDomain resets one tenant's pool after a compartment failure,
// exactly the hygiene QuarantineUntrusted applies to MU but scoped to a
// single blast radius: every resident page of that pool is scrubbed to
// zero, its allocator is replaced with a fresh free list over the same
// reservation, and the pool's epoch is bumped. Every other tenant's pool
// — and MT and MU — is untouched, so one hostile tenant's fault no
// longer invalidates its neighbours' heaps. Returns the pool's new
// epoch, or ErrNoDomainPool when the name resolves to nothing (the
// caller's cue to fall back to the global quarantine tier).
func (a *Allocator) QuarantineDomain(name string) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoDomainPool, name)
	}
	if err := a.space.ZeroResident(p.region.Base, p.region.Size); err != nil {
		return 0, fmt.Errorf("pkalloc: quarantine domain pool %q: %w", name, err)
	}
	p.alloc = heap.NewFreeList(heap.NewPagePool(p.region), a.space)
	p.epoch++
	return p.epoch, nil
}

// DomainEpoch returns how many times the named pool has been
// quarantined (false when no such pool exists). Holders of pool
// pointers compare epochs to detect that a reset invalidated them.
func (a *Allocator) DomainEpoch(name string) (uint64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return 0, false
	}
	return p.epoch, true
}

// DomainEpochs returns the quarantine epoch of every live pool, keyed by
// domain name — the per-tenant view /tenants.json serves.
func (a *Allocator) DomainEpochs() map[string]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.pools))
	for name, p := range a.pools {
		out[name] = p.epoch
	}
	return out
}

// DomainRegion returns the named pool's reservation.
func (a *Allocator) DomainRegion(name string) (*vm.Region, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return nil, false
	}
	return p.region, true
}

// DomainStats returns the named pool's heap counters.
func (a *Allocator) DomainStats(name string) (heap.Stats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pools[name]
	if !ok {
		return heap.Stats{}, false
	}
	return p.alloc.Stats(), true
}

// DomainPools returns the live pool names.
func (a *Allocator) DomainPools() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.pools))
	for name := range a.pools {
		names = append(names, name)
	}
	return names
}

// domainOwnerLocked resolves the pool owning addr in O(log regions): one
// vm.Space region lookup (binary search) and one map probe on the region
// base — never a scan over every pool. This is the Free path for domain
// allocations, so it must not degrade as the tenant count grows.
func (a *Allocator) domainOwnerLocked(addr vm.Addr) (heap.Allocator, bool) {
	if len(a.byBase) == 0 {
		return nil, false
	}
	r := a.space.RegionAt(addr)
	if r == nil {
		return nil, false
	}
	p, ok := a.byBase[r.Base]
	if !ok {
		return nil, false
	}
	return p.alloc, true
}
