package pkir

import (
	"testing"

	"repro/internal/compile"
)

// FuzzParse: arbitrary input must either parse into a module that
// survives validation + formatting + re-parsing, or fail with a
// ParseError — never panic.
func FuzzParse(f *testing.F) {
	f.Add("module m\nfunc f() {\ne:\n  ret\n}\n")
	f.Add(quickstartSrc)
	f.Add("module m\nuntrusted export func u(p, q) {\nentry:\n  x = add p, q\n  br x, entry, entry\n}\n")
	f.Add("module x\n")
	f.Add("")
	f.Add("module m\nfunc f() {\ne:\n  a, b = call f()\n  ret\n}")
	f.Add("module m\nfunc f() {\ne:\n  x = salloc 8\n  usalloc 4\n  ret\n}")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input is fine
		}
		// Accepted input must format and re-parse to the same text.
		text := Format(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted:\n%s", err, src, text)
		}
		if Format(m2) != text {
			t.Fatalf("format not stable for input %q", src)
		}
		// Validation and the pass pipeline must not panic either way.
		_, _ = compile.Pipeline(m, nil)
	})
}
