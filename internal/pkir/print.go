package pkir

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Format renders a module in canonical pkir text. The output parses back
// to an equivalent module (annotations included; pass-assigned metadata
// such as AllocIds and gate marks is rendered as comments).
func Format(m *ir.Module) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, f := range m.Funcs {
		b.WriteByte('\n')
		if f.Untrusted {
			b.WriteString("untrusted ")
		}
		if f.Exported {
			b.WriteString("export ")
		}
		fmt.Fprintf(&b, "func %s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for i := range blk.Instrs {
				b.WriteString("  ")
				b.WriteString(formatInstr(&blk.Instrs[i]))
				b.WriteByte('\n')
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatInstr(ins *ir.Instr) string {
	var b strings.Builder
	if len(ins.Dst) > 0 {
		b.WriteString(strings.Join(ins.Dst, ", "))
		b.WriteString(" = ")
	}
	switch ins.Op {
	case ir.OpConst:
		fmt.Fprintf(&b, "const %s", ins.Args[0])
	case ir.OpBin:
		fmt.Fprintf(&b, "%s %s, %s", ins.Bin, ins.Args[0], ins.Args[1])
	case ir.OpAlloc:
		fmt.Fprintf(&b, "alloc %s", ins.Args[0])
	case ir.OpUAlloc:
		fmt.Fprintf(&b, "ualloc %s", ins.Args[0])
	case ir.OpSAlloc:
		fmt.Fprintf(&b, "salloc %s", ins.Args[0])
	case ir.OpUSAlloc:
		fmt.Fprintf(&b, "usalloc %s", ins.Args[0])
	case ir.OpRealloc:
		fmt.Fprintf(&b, "realloc %s, %s", ins.Args[0], ins.Args[1])
	case ir.OpFree:
		fmt.Fprintf(&b, "free %s", ins.Args[0])
	case ir.OpLoad:
		fmt.Fprintf(&b, "load %s", ins.Args[0])
	case ir.OpStore:
		fmt.Fprintf(&b, "store %s, %s", ins.Args[0], ins.Args[1])
	case ir.OpLoadB:
		fmt.Fprintf(&b, "loadb %s", ins.Args[0])
	case ir.OpStoreB:
		fmt.Fprintf(&b, "storeb %s, %s", ins.Args[0], ins.Args[1])
	case ir.OpCall:
		fmt.Fprintf(&b, "call %s(%s)", ins.Callee, operandList(ins.Args))
	case ir.OpICall:
		fmt.Fprintf(&b, "icall %s(%s)", ins.Args[0], operandList(ins.Args[1:]))
	case ir.OpFuncAddr:
		fmt.Fprintf(&b, "funcaddr %s", ins.Callee)
	case ir.OpBr:
		fmt.Fprintf(&b, "br %s, %s, %s", ins.Args[0], ins.Then, ins.Else)
	case ir.OpJmp:
		fmt.Fprintf(&b, "jmp %s", ins.Then)
	case ir.OpRet:
		b.WriteString("ret")
		if len(ins.Args) > 0 {
			b.WriteByte(' ')
			b.WriteString(operandList(ins.Args))
		}
	case ir.OpPrint:
		fmt.Fprintf(&b, "print %s", ins.Args[0])
	case ir.OpNop:
		b.WriteString("nop")
	default:
		fmt.Fprintf(&b, "<%v>", ins.Op)
	}
	// Pass-assigned metadata, rendered as trailing comments.
	var notes []string
	if ins.Site.Func != "" {
		notes = append(notes, "site="+ins.Site.String())
	}
	if ins.Gate != ir.GateNone {
		notes = append(notes, ins.Gate.String())
	}
	if len(notes) > 0 {
		fmt.Fprintf(&b, " ; %s", strings.Join(notes, " "))
	}
	return b.String()
}

func operandList(ops []ir.Operand) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, ", ")
}
