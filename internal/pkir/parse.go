// Package pkir implements the textual form of the IR: a small, LLVM-ish
// assembly in which the example programs and the pkrusafe CLI's inputs are
// written. The syntax, by example:
//
//	module quickstart
//
//	; the unsafe C library, annotated untrusted at library level
//	untrusted export func clib_write(ptr) {
//	entry:
//	  store ptr, 1337
//	  ret
//	}
//
//	export func main() {
//	entry:
//	  p = alloc 8
//	  call clib_write(p)
//	  v = load p
//	  print v
//	  ret
//	}
package pkir

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pkir: line %d: %s", e.Line, e.Msg)
}

type parser struct {
	lines []string
	pos   int // index of the next line
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next non-empty, comment-stripped line.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

// Parse parses a module from source text.
func Parse(src string) (*ir.Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	line, ok := p.next()
	if !ok {
		return nil, p.errf("empty input")
	}
	name, found := strings.CutPrefix(line, "module ")
	if !found {
		return nil, p.errf("expected 'module <name>', got %q", line)
	}
	m := ir.NewModule(strings.TrimSpace(name))
	for {
		line, ok := p.next()
		if !ok {
			return m, nil
		}
		f, err := p.parseFunc(line)
		if err != nil {
			return nil, err
		}
		if err := m.AddFunc(f); err != nil {
			return nil, p.errf("%v", err)
		}
	}
}

// parseFunc parses one function starting at its header line.
func (p *parser) parseFunc(header string) (*ir.Func, error) {
	f := &ir.Func{}
	rest := header
	for {
		switch {
		case strings.HasPrefix(rest, "untrusted "):
			f.Untrusted = true
			rest = strings.TrimSpace(rest[len("untrusted"):])
		case strings.HasPrefix(rest, "export "):
			f.Exported = true
			rest = strings.TrimSpace(rest[len("export"):])
		case strings.HasPrefix(rest, "func "):
			rest = strings.TrimSpace(rest[len("func"):])
			goto signature
		default:
			return nil, p.errf("expected function header, got %q", header)
		}
	}
signature:
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return nil, p.errf("malformed function signature %q", rest)
	}
	f.Name = strings.TrimSpace(rest[:open])
	if f.Name == "" || !isIdent(f.Name) {
		return nil, p.errf("bad function name %q", f.Name)
	}
	for _, param := range splitArgs(rest[open+1 : closeIdx]) {
		if !isIdent(param) {
			return nil, p.errf("bad parameter name %q", param)
		}
		f.Params = append(f.Params, param)
	}
	if tail := strings.TrimSpace(rest[closeIdx+1:]); tail != "{" {
		return nil, p.errf("expected '{' after signature, got %q", tail)
	}

	var cur *ir.Block
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected EOF in function %q", f.Name)
		}
		if line == "}" {
			if len(f.Blocks) == 0 {
				return nil, p.errf("function %q has no blocks", f.Name)
			}
			return f, nil
		}
		if label, found := strings.CutSuffix(line, ":"); found && isIdent(label) {
			if _, dup := f.Block(label); dup {
				return nil, p.errf("duplicate block label %q", label)
			}
			cur = f.AddBlock(label)
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first block label: %q", line)
		}
		ins, err := p.parseInstr(line)
		if err != nil {
			return nil, err
		}
		cur.Instrs = append(cur.Instrs, ins)
	}
}

// parseInstr parses one instruction line.
func (p *parser) parseInstr(line string) (ir.Instr, error) {
	ins := ir.Instr{Line: p.pos}
	var dsts []string
	rest := line
	// Optional "d1, d2 = " destination list; '=' must precede any '('.
	if eq := strings.IndexByte(line, '='); eq >= 0 {
		if par := strings.IndexByte(line, '('); par < 0 || eq < par {
			for _, d := range splitArgs(line[:eq]) {
				if !isIdent(d) {
					return ins, p.errf("bad destination %q", d)
				}
				dsts = append(dsts, d)
			}
			if len(dsts) == 0 {
				return ins, p.errf("empty destination list in %q", line)
			}
			rest = strings.TrimSpace(line[eq+1:])
		}
	}
	ins.Dst = dsts

	op, args, _ := strings.Cut(rest, " ")
	args = strings.TrimSpace(args)

	needDst := func(n int) error {
		if len(dsts) != n {
			return p.errf("%s needs %d destination(s), got %d", op, n, len(dsts))
		}
		return nil
	}
	operands := func(want int) ([]ir.Operand, error) {
		parts := splitArgs(args)
		if len(parts) != want {
			return nil, p.errf("%s needs %d operand(s), got %d in %q", op, want, len(parts), line)
		}
		out := make([]ir.Operand, len(parts))
		for i, s := range parts {
			o, err := parseOperand(s)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			out[i] = o
		}
		return out, nil
	}

	var err error
	switch op {
	case "const":
		ins.Op = ir.OpConst
		if err = needDst(1); err != nil {
			return ins, err
		}
		ins.Args, err = operands(1)
	case "alloc", "ualloc", "salloc", "usalloc":
		switch op {
		case "alloc":
			ins.Op = ir.OpAlloc
		case "ualloc":
			ins.Op = ir.OpUAlloc
		case "salloc":
			ins.Op = ir.OpSAlloc
		default:
			ins.Op = ir.OpUSAlloc
		}
		if err = needDst(1); err != nil {
			return ins, err
		}
		ins.Args, err = operands(1)
	case "realloc":
		ins.Op = ir.OpRealloc
		if err = needDst(1); err != nil {
			return ins, err
		}
		ins.Args, err = operands(2)
	case "free":
		ins.Op = ir.OpFree
		if err = needDst(0); err != nil {
			return ins, err
		}
		ins.Args, err = operands(1)
	case "load", "loadb":
		ins.Op = ir.OpLoad
		if op == "loadb" {
			ins.Op = ir.OpLoadB
		}
		if err = needDst(1); err != nil {
			return ins, err
		}
		ins.Args, err = operands(1)
	case "store", "storeb":
		ins.Op = ir.OpStore
		if op == "storeb" {
			ins.Op = ir.OpStoreB
		}
		if err = needDst(0); err != nil {
			return ins, err
		}
		ins.Args, err = operands(2)
	case "call", "icall":
		return p.parseCall(op, rest, dsts)
	case "funcaddr":
		ins.Op = ir.OpFuncAddr
		if err = needDst(1); err != nil {
			return ins, err
		}
		if !isIdent(args) {
			return ins, p.errf("funcaddr needs a function name, got %q", args)
		}
		ins.Callee = args
	case "br":
		ins.Op = ir.OpBr
		parts := splitArgs(args)
		if len(parts) != 3 {
			return ins, p.errf("br needs 'cond, then, else', got %q", args)
		}
		var o ir.Operand
		if o, err = parseOperand(parts[0]); err != nil {
			return ins, p.errf("%v", err)
		}
		ins.Args = []ir.Operand{o}
		ins.Then, ins.Else = parts[1], parts[2]
	case "jmp":
		ins.Op = ir.OpJmp
		if !isIdent(args) {
			return ins, p.errf("jmp needs a label, got %q", args)
		}
		ins.Then = args
	case "ret":
		ins.Op = ir.OpRet
		if args != "" {
			parts := splitArgs(args)
			ins.Args = make([]ir.Operand, len(parts))
			for i, s := range parts {
				if ins.Args[i], err = parseOperand(s); err != nil {
					return ins, p.errf("%v", err)
				}
			}
		}
	case "print":
		ins.Op = ir.OpPrint
		ins.Args, err = operands(1)
	case "nop":
		ins.Op = ir.OpNop
	default:
		if kind, ok := ir.BinKindByName[op]; ok {
			ins.Op = ir.OpBin
			ins.Bin = kind
			if err = needDst(1); err != nil {
				return ins, err
			}
			ins.Args, err = operands(2)
		} else {
			return ins, p.errf("unknown instruction %q", op)
		}
	}
	return ins, err
}

// parseCall handles "call f(a, b)" and "icall fp(a, b)".
func (p *parser) parseCall(op, rest string, dsts []string) (ir.Instr, error) {
	ins := ir.Instr{Dst: dsts, Line: p.pos}
	body := strings.TrimSpace(rest[len(op):])
	open := strings.IndexByte(body, '(')
	closeIdx := strings.LastIndexByte(body, ')')
	if open < 0 || closeIdx < open {
		return ins, p.errf("malformed %s %q", op, body)
	}
	target := strings.TrimSpace(body[:open])
	argList := splitArgs(body[open+1 : closeIdx])
	ins.Args = make([]ir.Operand, 0, len(argList))
	for _, s := range argList {
		o, err := parseOperand(s)
		if err != nil {
			return ins, p.errf("%v", err)
		}
		ins.Args = append(ins.Args, o)
	}
	if op == "call" {
		ins.Op = ir.OpCall
		if !isIdent(target) {
			return ins, p.errf("call needs a function name, got %q", target)
		}
		ins.Callee = target
	} else {
		ins.Op = ir.OpICall
		fp, err := parseOperand(target)
		if err != nil {
			return ins, p.errf("%v", err)
		}
		// The function-pointer operand goes first.
		ins.Args = append([]ir.Operand{fp}, ins.Args...)
	}
	return ins, nil
}

func parseOperand(s string) (ir.Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return ir.Operand{}, fmt.Errorf("empty operand")
	}
	if c := s[0]; c >= '0' && c <= '9' {
		v, err := strconv.ParseUint(s, 0, 64)
		if err != nil {
			return ir.Operand{}, fmt.Errorf("bad immediate %q: %v", s, err)
		}
		return ir.Imm(v), nil
	}
	if !isIdent(s) {
		return ir.Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return ir.Reg(s), nil
}

// splitArgs splits a comma-separated list, trimming whitespace and
// dropping an empty tail.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9', r == '.', r == ':':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
