package pkir

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/ir"
)

// genModule builds a random, always-valid module: a handful of functions
// with random annotations, straight-line and branching blocks, and calls
// wired only to already-generated functions with correct arity.
func genModule(rng *rand.Rand) *ir.Module {
	m := ir.NewModule(fmt.Sprintf("gen%d", rng.Intn(1000)))
	nFuncs := rng.Intn(4) + 1
	type sig struct {
		name   string
		params int
	}
	var sigs []sig
	for fi := 0; fi < nFuncs; fi++ {
		f := &ir.Func{
			Name:      fmt.Sprintf("f%d", fi),
			Untrusted: rng.Intn(3) == 0,
			Exported:  rng.Intn(2) == 0,
		}
		nParams := rng.Intn(3)
		for p := 0; p < nParams; p++ {
			f.Params = append(f.Params, fmt.Sprintf("p%d", p))
		}
		// Registers available so far (params + defined).
		regs := append([]string{}, f.Params...)
		operand := func() ir.Operand {
			if len(regs) == 0 || rng.Intn(2) == 0 {
				return ir.Imm(uint64(rng.Intn(1000)))
			}
			return ir.Reg(regs[rng.Intn(len(regs))])
		}
		newReg := func() string {
			r := fmt.Sprintf("v%d", len(regs))
			regs = append(regs, r)
			return r
		}
		nBlocks := rng.Intn(3) + 1
		for bi := 0; bi < nBlocks; bi++ {
			b := f.AddBlock(fmt.Sprintf("b%d", bi))
			nInstrs := rng.Intn(5)
			for ii := 0; ii < nInstrs; ii++ {
				switch rng.Intn(7) {
				case 0:
					b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpConst, Dst: []string{newReg()}, Args: []ir.Operand{ir.Imm(uint64(rng.Intn(99)))}})
				case 1:
					kinds := []ir.BinKind{ir.BinAdd, ir.BinMul, ir.BinXor, ir.BinLt}
					b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpBin, Bin: kinds[rng.Intn(len(kinds))], Dst: []string{newReg()}, Args: []ir.Operand{operand(), operand()}})
				case 2:
					ops := []ir.Op{ir.OpAlloc, ir.OpUAlloc, ir.OpSAlloc, ir.OpUSAlloc}
					b.Instrs = append(b.Instrs, ir.Instr{Op: ops[rng.Intn(len(ops))], Dst: []string{newReg()}, Args: []ir.Operand{ir.Imm(uint64(rng.Intn(256) + 1))}})
				case 3:
					b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpPrint, Args: []ir.Operand{operand()}})
				case 4:
					b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpNop})
				case 5:
					if len(sigs) > 0 {
						callee := sigs[rng.Intn(len(sigs))]
						args := make([]ir.Operand, callee.params)
						for i := range args {
							args[i] = operand()
						}
						ins := ir.Instr{Op: ir.OpCall, Callee: callee.name, Args: args}
						if rng.Intn(2) == 0 {
							ins.Dst = []string{newReg()}
						}
						b.Instrs = append(b.Instrs, ins)
					}
				case 6:
					b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpStoreB, Args: []ir.Operand{operand(), operand()}})
				}
			}
			// Terminator: jump forward, branch, or return.
			switch {
			case bi+1 < nBlocks && rng.Intn(2) == 0:
				b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpJmp, Then: fmt.Sprintf("b%d", bi+1)})
			case bi+1 < nBlocks:
				b.Instrs = append(b.Instrs, ir.Instr{
					Op: ir.OpBr, Args: []ir.Operand{operand()},
					Then: fmt.Sprintf("b%d", bi+1), Else: fmt.Sprintf("b%d", rng.Intn(bi+1)),
				})
			default:
				ins := ir.Instr{Op: ir.OpRet}
				if rng.Intn(2) == 0 {
					ins.Args = []ir.Operand{operand()}
				}
				b.Instrs = append(b.Instrs, ins)
			}
		}
		if err := m.AddFunc(f); err != nil {
			panic(err)
		}
		sigs = append(sigs, sig{name: f.Name, params: len(f.Params)})
	}
	return m
}

// TestGeneratedModulesRoundTrip: for randomly generated valid modules,
// Format(Parse(Format(m))) is a fixed point, validation passes before
// and after, and compile statistics are preserved across the round trip.
func TestGeneratedModulesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	for i := 0; i < 200; i++ {
		m := genModule(rng)
		if err := compile.Validate(m); err != nil {
			t.Fatalf("generator produced invalid module: %v\n%s", err, Format(m))
		}
		text := Format(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\n%s", err, text)
		}
		text2 := Format(m2)
		if text2 != text {
			t.Fatalf("Format not a fixed point:\n--- first\n%s\n--- second\n%s", text, text2)
		}
		st1, err := compile.Pipeline(m, nil)
		if err != nil {
			t.Fatalf("pipeline on original: %v", err)
		}
		st2, err := compile.Pipeline(m2, nil)
		if err != nil {
			t.Fatalf("pipeline on round-tripped: %v", err)
		}
		if st1 != st2 {
			t.Fatalf("pipeline stats diverged: %+v vs %+v\n%s", st1, st2, text)
		}
	}
}

// TestGeneratedModulesAnnotationsSurvive: trust and export annotations
// survive the textual round trip for every generated function.
func TestGeneratedModulesAnnotationsSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		m := genModule(rng)
		m2, err := Parse(Format(m))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Funcs {
			g, ok := m2.Func(f.Name)
			if !ok {
				t.Fatalf("function %s lost", f.Name)
			}
			if g.Untrusted != f.Untrusted || g.Exported != f.Exported {
				t.Fatalf("%s annotations changed: %v/%v -> %v/%v",
					f.Name, f.Untrusted, f.Exported, g.Untrusted, g.Exported)
			}
			if strings.Join(g.Params, ",") != strings.Join(f.Params, ",") {
				t.Fatalf("%s params changed", f.Name)
			}
		}
	}
}
