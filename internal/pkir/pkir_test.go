package pkir

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

const quickstartSrc = `
module quickstart

; unsafe C library
untrusted export func clib_write(ptr) {
entry:
  store ptr, 1337
  ret
}

export func main() {
entry:
  p = alloc 8
  call clib_write(p)
  v = load p
  print v
  ret v
}
`

func TestParseQuickstart(t *testing.T) {
	m, err := Parse(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "quickstart" {
		t.Errorf("module name = %q", m.Name)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
	clib, ok := m.Func("clib_write")
	if !ok || !clib.Untrusted || !clib.Exported {
		t.Errorf("clib_write = %+v", clib)
	}
	if len(clib.Params) != 1 || clib.Params[0] != "ptr" {
		t.Errorf("params = %v", clib.Params)
	}
	main, _ := m.Func("main")
	if main.Untrusted {
		t.Error("main marked untrusted")
	}
	entry := main.Entry()
	if entry == nil || entry.Name != "entry" || len(entry.Instrs) != 5 {
		t.Fatalf("entry block = %+v", entry)
	}
	if entry.Instrs[0].Op != ir.OpAlloc || entry.Instrs[0].Dst[0] != "p" {
		t.Errorf("instr 0 = %+v", entry.Instrs[0])
	}
	if entry.Instrs[1].Op != ir.OpCall || entry.Instrs[1].Callee != "clib_write" {
		t.Errorf("instr 1 = %+v", entry.Instrs[1])
	}
	if term := entry.Terminator(); term.Op != ir.OpRet || len(term.Args) != 1 {
		t.Errorf("terminator = %+v", term)
	}
}

func TestParseAllInstructionForms(t *testing.T) {
	src := `
module all
export func callee(a, b) {
entry:
  ret a
}
export func main() {
entry:
  c = const 42
  h = const 0x10
  s = add c, h
  d = sub s, 1
  m = mul d, 2
  q = div m, 3
  r = mod q, 5
  x = and r, 7
  y = or x, 8
  z = xor y, 1
  sl = shl z, 2
  sr = shr sl, 1
  e1 = eq sr, sr
  n1 = ne sr, 0
  l1 = lt 1, 2
  le1 = le 2, 2
  g1 = gt 3, 2
  ge1 = ge 3, 3
  p = alloc 64
  u = ualloc 32
  p2 = realloc p, 128
  store p2, 99
  v = load p2
  storeb u, 255
  vb = loadb u
  free u
  free p2
  fp = funcaddr callee
  r1 = call callee(1, 2)
  r2 = icall fp(3, 4)
  print r2
  nop
  br e1, yes, no
yes:
  jmp done
no:
  jmp done
done:
  ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	main, _ := m.Func("main")
	if len(main.Blocks) != 4 {
		t.Errorf("blocks = %d", len(main.Blocks))
	}
	// Exhaustive re-parse of the canonical form below covers the details.
	text := Format(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if Format(m2) != text {
		t.Error("Format not a fixed point")
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	m, err := Parse(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(Format(m))
	if err != nil {
		t.Fatal(err)
	}
	f1, _ := m.Func("main")
	f2, _ := m2.Func("main")
	if len(f1.Entry().Instrs) != len(f2.Entry().Instrs) {
		t.Error("instruction count changed through round trip")
	}
	u1, _ := m.Func("clib_write")
	u2, _ := m2.Func("clib_write")
	if u1.Untrusted != u2.Untrusted || u1.Exported != u2.Exported {
		t.Error("annotations lost through round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"no module", "func f() {\nentry:\n ret\n}"},
		{"bad header", "module m\nnonsense f() {"},
		{"bad func name", "module m\nfunc 9bad() {\nentry:\n  ret\n}"},
		{"missing brace", "module m\nfunc f()\nentry:\n ret\n}"},
		{"instr before label", "module m\nfunc f() {\n  ret\n}"},
		{"dup label", "module m\nfunc f() {\ne:\n  ret\ne:\n  ret\n}"},
		{"dup func", "module m\nfunc f() {\ne:\n ret\n}\nfunc f() {\ne:\n ret\n}"},
		{"unknown op", "module m\nfunc f() {\ne:\n  frobnicate x\n}"},
		{"bad operand count", "module m\nfunc f() {\ne:\n  x = add 1\n}"},
		{"missing dst", "module m\nfunc f() {\ne:\n  add 1, 2\n}"},
		{"bad imm", "module m\nfunc f() {\ne:\n  x = const 12z\n}"},
		{"bad br", "module m\nfunc f() {\ne:\n  br 1, only_one\n}"},
		{"unterminated func", "module m\nfunc f() {\ne:\n  ret"},
		{"empty func", "module m\nfunc f() {\n}"},
		{"bad funcaddr", "module m\nfunc f() {\ne:\n  x = funcaddr 123\n}"},
		{"bad call", "module m\nfunc f() {\ne:\n  call nope_no_parens\n}"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(c.src); err == nil {
				t.Errorf("accepted invalid input:\n%s", c.src)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	src := "module m\nfunc f() {\nentry:\n  x = bogus 1\n}\n"
	_, err := Parse(src)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 4 {
		t.Errorf("error line = %d, want 4", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 4") {
		t.Errorf("message %q lacks line", pe.Error())
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "module m ; trailing comment\n\n   \n; full comment\nfunc f() { ; brace comment would break — keep on own line\nentry:\n  ret ; done\n}\n"
	// The '{' line has a comment after it; parser strips comments first.
	if _, err := Parse(src); err != nil {
		t.Fatalf("comment handling: %v", err)
	}
}

func TestFormatShowsPassMetadata(t *testing.T) {
	m, _ := Parse(quickstartSrc)
	main, _ := m.Func("main")
	main.Entry().Instrs[0].Site.Func = "main"
	main.Entry().Instrs[1].Gate = ir.GateEnterUntrusted
	text := Format(m)
	if !strings.Contains(text, "site=main@0.0") {
		t.Errorf("formatted output lacks site comment:\n%s", text)
	}
	if !strings.Contains(text, "gate(T->U)") {
		t.Errorf("formatted output lacks gate comment:\n%s", text)
	}
}

func TestMultiDestCall(t *testing.T) {
	src := `
module m
func two() {
entry:
  ret 1, 2
}
func main() {
entry:
  a, b = call two()
  s = add a, b
  ret s
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	main, _ := m.Func("main")
	callIns := main.Entry().Instrs[0]
	if len(callIns.Dst) != 2 || callIns.Dst[0] != "a" || callIns.Dst[1] != "b" {
		t.Errorf("multi-dest = %v", callIns.Dst)
	}
}
