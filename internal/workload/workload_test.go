package workload

import (
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
)

func TestSuiteShapes(t *testing.T) {
	suites := Suites()
	if len(suites) != 4 {
		t.Fatalf("suites = %d", len(suites))
	}
	if n := len(suites["kraken"]); n != 14 {
		t.Errorf("kraken = %d benchmarks, want 14 (Figure 5)", n)
	}
	if n := len(suites["octane"]); n != 17 {
		t.Errorf("octane = %d benchmarks, want 17 (Figure 6)", n)
	}
	// JetStream2 has 64 benchmarks; the paper disabled the 5 WASM tests
	// (§5.3), leaving the 59 shown in Figure 7.
	if n := len(suites["jetstream2"]); n != 59 {
		t.Errorf("jetstream2 = %d benchmarks, want 59 (Figure 7, WASM disabled)", n)
	}
	subs := map[string]bool{}
	for _, b := range suites["dromaeo"] {
		subs[b.Sub] = true
	}
	for _, want := range []string{"dom", "v8", "dromaeo", "sunspider", "jslib"} {
		if !subs[want] {
			t.Errorf("dromaeo missing sub-suite %q (Table 2)", want)
		}
	}
	// Names must be unique within a suite.
	for name, list := range suites {
		seen := map[string]bool{}
		for _, b := range list {
			if seen[b.Name] {
				t.Errorf("%s: duplicate benchmark %q", name, b.Name)
			}
			seen[b.Name] = true
		}
	}
}

// TestEveryBenchmarkExecutes runs each benchmark's setup and one small
// invocation in the base configuration — the scripts must parse and run.
func TestEveryBenchmarkExecutes(t *testing.T) {
	for suite, list := range Suites() {
		for _, b := range list {
			b := b
			t.Run(suite+"/"+b.Name, func(t *testing.T) {
				t.Parallel()
				br, err := browser.New(core.Base, nil)
				if err != nil {
					t.Fatal(err)
				}
				if b.HTML != "" {
					if err := br.LoadHTML(b.HTML); err != nil {
						t.Fatal(err)
					}
				}
				if b.Kind == Parse {
					if _, err := br.ExecScript(b.Blob); err != nil {
						t.Fatalf("blob: %v", err)
					}
					return
				}
				if _, err := br.ExecScript(b.Setup); err != nil {
					t.Fatalf("setup: %v", err)
				}
				id, err := br.LookupScriptFunc("bench")
				if err != nil {
					t.Fatalf("no bench function: %v", err)
				}
				if _, err := br.InvokeScriptFunc(id, 1); err != nil {
					t.Fatalf("bench(1): %v", err)
				}
			})
		}
	}
}

// TestBenchmarksRunUnderEnforcement: a representative benchmark from each
// suite completes under full MPK enforcement after profiling.
func TestBenchmarksRunUnderEnforcement(t *testing.T) {
	picks := []Benchmark{
		Dromaeo()[0], // dom-attr: heavy DOM traffic
		Kraken()[0],  // audio-fft
		Octane()[2],  // DeltaBlue
		JetStream2()[0],
	}
	for _, b := range picks {
		b := b
		t.Run(b.Suite+"/"+b.Name, func(t *testing.T) {
			t.Parallel()
			run := func(br *browser.Browser, n float64) error {
				if b.HTML != "" {
					if err := br.LoadHTML(b.HTML); err != nil {
						return err
					}
				}
				if _, err := br.ExecScript(b.Setup); err != nil {
					return err
				}
				id, err := br.LookupScriptFunc("bench")
				if err != nil {
					return err
				}
				_, err = br.InvokeScriptFunc(id, n)
				return err
			}
			prof, err := browser.CollectProfile(func(br *browser.Browser) error {
				return run(br, 2)
			})
			if err != nil {
				t.Fatalf("profiling: %v", err)
			}
			br, err := browser.New(core.MPK, prof)
			if err != nil {
				t.Fatal(err)
			}
			if err := run(br, b.N); err != nil {
				t.Fatalf("enforced run: %v", err)
			}
		})
	}
}

// TestTransitionDensityShape is the paper's core claim about workloads:
// dom-style benchmarks perform orders of magnitude more compartment
// transitions per run than compute kernels (Table 2's Transitions
// column). This is deterministic, not timing-based.
func TestTransitionDensityShape(t *testing.T) {
	countTransitions := func(b Benchmark) uint64 {
		run := func(br *browser.Browser) error {
			if b.HTML != "" {
				if err := br.LoadHTML(b.HTML); err != nil {
					return err
				}
			}
			if _, err := br.ExecScript(b.Setup); err != nil {
				return err
			}
			id, err := br.LookupScriptFunc("bench")
			if err != nil {
				return err
			}
			_, err = br.InvokeScriptFunc(id, b.N)
			return err
		}
		prof, err := browser.CollectProfile(run)
		if err != nil {
			t.Fatal(err)
		}
		br, err := browser.New(core.MPK, prof)
		if err != nil {
			t.Fatal(err)
		}
		if err := run(br); err != nil {
			t.Fatal(err)
		}
		return br.Stats().Transitions
	}
	dom := countTransitions(Dromaeo()[0]) // dom-attr
	fft := countTransitions(Kraken()[0])  // audio-fft
	if dom < 50*fft {
		t.Errorf("dom transitions (%d) should dwarf compute transitions (%d)", dom, fft)
	}
}

func TestMicroWorld(t *testing.T) {
	w, err := NewMicroWorld()
	if err != nil {
		t.Fatal(err)
	}
	th := w.Prog.Main()
	// Identical bodies, different gating.
	before := w.Prog.Transitions()
	if _, err := th.Call(MicroTrustedLib, "empty"); err != nil {
		t.Fatal(err)
	}
	if got := w.Prog.Transitions(); got != before {
		t.Error("trusted call crossed a gate")
	}
	if _, err := th.Call(MicroUntrustedLib, "empty"); err != nil {
		t.Fatal(err)
	}
	if got := w.Prog.Transitions(); got != before+1 {
		t.Errorf("untrusted call transitions = %d, want %d", got, before+1)
	}
	// Callback re-enters T: two transitions.
	before = w.Prog.Transitions()
	if _, err := th.Call(MicroUntrustedLib, "callback"); err != nil {
		t.Fatal(err)
	}
	if got := w.Prog.Transitions(); got != before+2 {
		t.Errorf("callback transitions = %d, want +2", got-before)
	}
	// Read-One reads the shared MU buffer from inside the gate.
	res, err := th.Call(MicroUntrustedLib, "read_one", uint64(w.Shared))
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 0x5eed {
		t.Errorf("read_one = %#x", res[0])
	}
	// Work returns a deterministic value for a given loop count.
	a, err := th.Call(MicroUntrustedLib, "work", 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := th.Call(MicroTrustedLib, "work", 10)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("trusted and untrusted work bodies differ")
	}
}
