package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultSpec is a parsed -inject-fault directive: which tenant's requests
// get a synthetic compartment fault, and how often. The zero value
// injects nothing.
type FaultSpec struct {
	// Tenant scopes injection to one tenant's requests; "" injects into
	// the global request stream (the legacy every-Nth form).
	Tenant string
	// Every injects into every Nth request of the scope (tenant-local
	// sequence when Tenant is set, global sequence otherwise). Zero
	// disables injection.
	Every int
}

// Enabled reports whether the spec injects anything.
func (s FaultSpec) Enabled() bool { return s.Every > 0 }

// Hits reports whether the seq-th request of the spec's scope (1-based)
// takes an injected fault.
func (s FaultSpec) Hits(tenant string, seq int) bool {
	if s.Every <= 0 {
		return false
	}
	if s.Tenant != "" && tenant != s.Tenant {
		return false
	}
	return seq%s.Every == 0
}

func (s FaultSpec) String() string {
	if !s.Enabled() {
		return "off"
	}
	if s.Tenant == "" {
		return fmt.Sprintf("every %d requests", s.Every)
	}
	return fmt.Sprintf("%s: every %d requests", s.Tenant, s.Every)
}

// ParseFaultSpec parses the -inject-fault flag value. Accepted forms:
//
//	""             no injection
//	"0"            no injection
//	"40"           every 40th request, any tenant (the legacy form)
//	"tenant3:0.2"  20% of tenant3's requests (deterministically, every
//	               5th — a rate r becomes the period round(1/r), so
//	               rehearsals replay byte-identically)
//	"tenant3:5"    every 5th of tenant3's requests
func ParseFaultSpec(s string) (FaultSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return FaultSpec{}, nil
	}
	tenant, freq := "", s
	if i := strings.LastIndex(s, ":"); i >= 0 {
		tenant, freq = s[:i], s[i+1:]
		if tenant == "" {
			return FaultSpec{}, fmt.Errorf("workload: bad fault spec %q: empty tenant", s)
		}
	}
	if n, err := strconv.Atoi(freq); err == nil {
		if n < 0 {
			return FaultSpec{}, fmt.Errorf("workload: bad fault spec %q: negative period", s)
		}
		return FaultSpec{Tenant: tenant, Every: n}, nil
	}
	rate, err := strconv.ParseFloat(freq, 64)
	if err != nil {
		return FaultSpec{}, fmt.Errorf("workload: bad fault spec %q: %w", s, err)
	}
	if rate <= 0 || rate > 1 {
		return FaultSpec{}, fmt.Errorf("workload: bad fault spec %q: rate must be in (0, 1]", s)
	}
	return FaultSpec{Tenant: tenant, Every: int(1/rate + 0.5)}, nil
}
