package workload

import (
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/profile"
	"repro/internal/vm"
)

// Micro-benchmark workloads (§5.2): each workload exists in a trusted and
// an untrusted library with identical bodies; the untrusted copies run
// behind call gates and the trusted copies do not, so the ratio of their
// timings is exactly the call-gate overhead the paper reports.
const (
	MicroTrustedLib   = "micro_trusted"
	MicroUntrustedLib = "micro_untrusted"
)

// MicroWorld is a built program with both micro libraries registered.
type MicroWorld struct {
	Prog *core.Program
	// Shared is an MU buffer the Read-One workload reads.
	Shared vm.Addr
	// SiteShared is an MU buffer allocated through the registered site
	// micro::shared@0.0 — unlike Shared (a raw allocator call with no
	// provenance), reads through it can be attributed by the forensics
	// recorder and the crossing sampler.
	SiteShared vm.Addr
}

// NewMicroWorld builds the mpk-configuration program the paper measures
// call gates in. Options (telemetry, gate cost, tracing) pass through to
// core.NewProgram.
func NewMicroWorld(opts ...core.Options) (*MicroWorld, error) {
	reg := ffi.NewRegistry()
	defineMicroFuncs(reg)
	prog, err := core.NewProgram(reg, core.MPK, profile.New(), opts...)
	if err != nil {
		return nil, err
	}
	shared, err := prog.Allocator().UntrustedAlloc(64)
	if err != nil {
		return nil, err
	}
	if err := prog.Main().VM.Store64(shared, 0x5eed); err != nil {
		return nil, err
	}
	siteShared, err := prog.AllocAt(prog.UntrustedSite("micro::shared", 0, 0), 64)
	if err != nil {
		return nil, err
	}
	if err := prog.Main().VM.Store64(siteShared, 0x5eed); err != nil {
		return nil, err
	}
	return &MicroWorld{Prog: prog, Shared: shared, SiteShared: siteShared}, nil
}

// defineMicroFuncs registers identical workload bodies in a trusted and
// an untrusted library, plus the trusted callback target.
func defineMicroFuncs(reg *ffi.Registry) {
	tl := reg.MustLibrary(MicroTrustedLib, ffi.Trusted)
	ul := reg.MustLibrary(MicroUntrustedLib, ffi.Untrusted)

	// cb_target is the exported trusted function the Callback workload
	// re-enters T through.
	tl.Define("cb_target", func(_ *ffi.Thread, _ []uint64) ([]uint64, error) {
		return nil, nil
	})

	for _, lib := range []*ffi.Library{tl, ul} {
		// Empty: no body — pure per-call overhead.
		lib.Define("empty", func(_ *ffi.Thread, _ []uint64) ([]uint64, error) {
			return nil, nil
		})
		// Read-One: a single heap read.
		lib.Define("read_one", func(th *ffi.Thread, args []uint64) ([]uint64, error) {
			v, err := th.Load64(vm.Addr(args[0]))
			return []uint64{v}, err
		})
		// Callback: re-enter the trusted compartment once.
		lib.Define("callback", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
			return th.Call(MicroTrustedLib, "cb_target")
		})
		// Work: a controllable arithmetic loop between transitions — the
		// Figure 3 workload. The accumulator is returned so the loop
		// cannot be optimized away.
		lib.Define("work", func(_ *ffi.Thread, args []uint64) ([]uint64, error) {
			loops := args[0]
			acc := uint64(1)
			for i := uint64(0); i < loops; i++ {
				acc = acc*6364136223846793005 + 1442695040888963407
				acc ^= acc >> 17
			}
			return []uint64{acc}, nil
		})
	}
}
