package workload

import (
	"fmt"
	"strings"
)

// Kind selects how the harness drives a benchmark.
type Kind uint8

const (
	// Invoke: Setup defines bench(n); the harness calls it repeatedly
	// through the engine's cheap invoke path.
	Invoke Kind = iota
	// Parse: the harness evaluates Blob from scratch each iteration
	// (code-load-style benchmarks dominated by parse cost).
	Parse
)

// Benchmark is one evaluation workload.
type Benchmark struct {
	Suite string // "dromaeo", "kraken", "octane", "jetstream2"
	Sub   string // Dromaeo sub-suite ("dom", "v8", "dromaeo", "sunspider", "jslib")
	Name  string
	Kind  Kind
	HTML  string  // page loaded before the script (may be empty)
	Setup string  // script defining bench(n) and its state
	Blob  string  // Parse-kind payload
	N     float64 // argument passed to bench
	Iters int     // invocations per measurement
}

// HarnessPage is the standing document every benchmark runs against: the
// DOM workloads operate on it directly, and for compute workloads it is
// the test-harness page whose per-frame housekeeping keeps the browser
// allocating private data during the run.
const HarnessPage = benchPage

// benchPage is the standing document the DOM workloads operate on.
const benchPage = `
<body id="body">
	<div id="main" class="container wide">
		<ul id="list">
			<li class="item">alpha</li><li class="item">beta</li>
			<li class="item">gamma</li><li class="item">delta</li>
		</ul>
		<div id="content" class="content">seed text</div>
		<p id="para" class="p1" title="tip">paragraph body text</p>
	</div>
</body>`

// --- DOM workloads: binding calls in tight loops (transition-heavy) ---

func domAttr() string {
	return `
var para = byId("para");
function bench(n) {
	var acc = 0;
	for (var i = 0; i < n; i++) {
		setAttr(para, "title", "tip" + (i % 10));
		acc += getAttr(para, "title").length;
		acc += getAttr(para, "class").length;
	}
	return acc;
}`
}

func domModify() string {
	return `
var content = byId("content");
function bench(n) {
	for (var i = 0; i < n; i++) {
		var d = createElement("div");
		appendChild(content, d);
		setText(d, "node " + i);
	}
	var c = childCount(content);
	removeChildren(content);
	return c;
}`
}

func domQuery() string {
	return `
function bench(n) {
	var acc = 0;
	for (var i = 0; i < n; i++) {
		acc += byId("para");
		acc += byId("list");
		var items = queryTag("li");
		acc += items.length;
	}
	return acc;
}`
}

func domTraverse() string {
	return `
function bench(n) {
	var acc = 0;
	for (var i = 0; i < n; i++) {
		var items = queryTag("li");
		for (var j = 0; j < items.length; j++) {
			acc += getText(items[j]).length;
			acc += childCount(items[j]);
		}
	}
	return acc;
}`
}

func domHTML() string {
	return `
var content = byId("content");
function bench(n) {
	for (var i = 0; i < n; i++) {
		setInnerHTML(content, "<span>a</span><span>b</span><em>c</em>");
	}
	return childCount(content);
}`
}

// --- jslib workloads: jQuery-shaped chained DOM operations ---

func jslibStyle() string {
	return `
function bench(n) {
	var acc = 0;
	for (var i = 0; i < n; i++) {
		var items = queryTag("li");
		for (var j = 0; j < items.length; j++) {
			setAttr(items[j], "class", (i + j) % 2 ? "item odd" : "item even");
			acc += getAttr(items[j], "class").length;
		}
	}
	return acc;
}`
}

func jslibText() string {
	return `
function bench(n) {
	var acc = 0;
	for (var i = 0; i < n; i++) {
		var items = queryTag("li");
		for (var j = 0; j < items.length; j++) {
			var t = getText(items[j]);
			setText(items[j], t.substr(0, 5));
			acc += t.length;
		}
	}
	return acc;
}`
}

func jslibBuild() string {
	return `
var main = byId("main");
function bench(n) {
	for (var i = 0; i < n; i++) {
		var w = createElement("div");
		appendChild(main, w);
		setAttr(w, "class", "widget");
		setInnerHTML(w, "<span>w</span>");
		reflow();
	}
	var c = childCount(main);
	removeChildren(main);
	return c;
}`
}

// Dromaeo returns the Dromaeo suite across its five sub-suites (Table 2
// and Figure 4): dom and jslib transition-heavy, v8/dromaeo/sunspider
// compute-bound inside the engine.
func Dromaeo() []Benchmark {
	mk := func(sub, name, setup, html string, n float64, iters int) Benchmark {
		return Benchmark{Suite: "dromaeo", Sub: sub, Name: name, Setup: setup, HTML: html, N: n, Iters: iters}
	}
	return []Benchmark{
		// dom: the transition-dense sub-suite.
		mk("dom", "dom-attr", domAttr(), benchPage, 60, 4),
		mk("dom", "dom-modify", domModify(), benchPage, 50, 4),
		mk("dom", "dom-query", domQuery(), benchPage, 80, 4),
		mk("dom", "dom-traverse", domTraverse(), benchPage, 30, 4),
		mk("dom", "dom-html", domHTML(), benchPage, 30, 4),
		// v8-shaped compute.
		mk("v8", "v8-richards", kernelRichards(64), "", 4, 4),
		mk("v8", "v8-deltablue", kernelDeltaBlue(256), "", 20, 4),
		mk("v8", "v8-crypto", kernelCryptoMix(64, 4), "", 6, 4),
		mk("v8", "v8-raytrace", kernelRayTrace(1024), "", 6, 4),
		// dromaeo's own JS tests.
		mk("dromaeo", "js-array", kernelHashMap(512), "", 3, 4),
		mk("dromaeo", "js-string", kernelStringUnpack(128), "", 8, 4),
		mk("dromaeo", "js-regex", kernelRegex(2000), "", 6, 4),
		mk("dromaeo", "js-objects", kernelObjects(96), "", 4, 4),
		// sunspider-shaped compute.
		mk("sunspider", "ss-3d-mm", kernelFloatMM(20), "", 4, 4),
		mk("sunspider", "ss-bitops", kernelCryptoMix(48, 3), "", 8, 4),
		mk("sunspider", "ss-math", kernelNBody(48), "", 8, 4),
		// jslib: transition-heavy library operations.
		mk("jslib", "jslib-style", jslibStyle(), benchPage, 40, 4),
		mk("jslib", "jslib-text", jslibText(), benchPage, 40, 4),
		mk("jslib", "jslib-build", jslibBuild(), benchPage, 25, 4),
	}
}

// Kraken returns the 14 Kraken benchmarks (Figure 5): pure compute
// kernels inside the engine.
func Kraken() []Benchmark {
	mk := func(name, setup string, n float64) Benchmark {
		return Benchmark{Suite: "kraken", Name: name, Setup: setup, N: n, Iters: 3}
	}
	return []Benchmark{
		mk("audio-fft", kernelFFT(128), 4),
		mk("stanford-crypto-pbkdf2", kernelPBKDF2(60), 8),
		mk("audio-beat-detection", kernelBlur(4096), 5),
		mk("stanford-crypto-ccm", kernelAES(512), 5),
		mk("imaging-darkroom", kernelDarkroom(4096), 5),
		mk("json-parse-financial", kernelJSONParse(160), 4),
		mk("imaging-gaussian-blur", kernelBlur(8192), 4),
		mk("ai-astar", kernelAStar(40), 5),
		mk("audio-dft", kernelFFT(64), 8),
		mk("stanford-crypto-sha256-iterative", kernelCryptoMix(64, 6), 6),
		mk("json-stringify-tinderbox", kernelJSONStringify(200), 4),
		mk("audio-oscillator", kernelNBody(64), 6),
		mk("stanford-crypto-aes", kernelAES(1024), 4),
		mk("imaging-desaturate", kernelDesaturate(8192), 4),
	}
}

// Octane returns the 17 Octane benchmarks (Figure 6).
func Octane() []Benchmark {
	mk := func(name, setup string, n float64) Benchmark {
		return Benchmark{Suite: "octane", Name: name, Setup: setup, N: n, Iters: 3}
	}
	out := []Benchmark{
		mk("Mandreel", kernelGameboy(192), 4),
		mk("MandreelLatency", kernelGameboy(48), 12),
		mk("DeltaBlue", kernelDeltaBlue(512), 20),
		mk("NavierStokes", kernelFloatMM(24), 4),
		mk("EarleyBoyer", kernelSplay(512), 3),
		mk("SplayLatency", kernelSplay(128), 10),
		mk("Crypto", kernelCryptoMix(96, 5), 5),
		mk("Splay", kernelSplay(384), 4),
		mk("Gameboy", kernelGameboy(256), 4),
		mk("Typescript", kernelRegex(3000), 5),
		mk("Box2D", kernelNBody(72), 6),
		mk("Richards", kernelRichards(96), 4),
		mk("RegExp", kernelRegex(2500), 5),
		mk("PdfJS", kernelJSONParse(200), 4),
		mk("zlib", kernelZlib(4096), 4),
		mk("RayTrace", kernelRayTrace(2048), 4),
	}
	// CodeLoad: parse-dominated, evaluated from scratch per iteration.
	out = append(out, Benchmark{
		Suite: "octane", Name: "CodeLoad", Kind: Parse,
		Blob: codeLoadBlob(40), Iters: 4,
	})
	return out
}

// codeLoadBlob generates a large script whose cost is parsing, not running.
func codeLoadBlob(funcs int) string {
	var b strings.Builder
	for i := 0; i < funcs; i++ {
		fmt.Fprintf(&b, "function gen%d(a, b) { var x = a * %d + b; var y = x - a; if (y > b) { y = y + %d; } else { y = y - 1; } return x + y; }\n", i, i+1, i)
	}
	fmt.Fprintf(&b, "var total = 0; for (var i = 0; i < %d; i++) total += gen0(i, i+1);\ntotal;", funcs)
	return b.String()
}

// JetStream2 returns the JetStream2 list (Figure 7, Table 3): the suite's
// 64 benchmarks minus the 5 WASM tests the paper disabled, i.e. the 59
// shown in the figure. Names follow the paper's figure; each maps to a
// kernel with its own parameters.
func JetStream2() []Benchmark {
	type spec struct {
		name  string
		setup string
		n     float64
	}
	specs := []spec{
		{"WSL", kernelRegex(1500), 4},
		{"UniPoker", kernelHashMap(256), 4},
		{"uglify-js-wtb", kernelStringUnpack(160), 5},
		{"typescript", kernelRegex(2200), 4},
		{"tagcloud-SP", kernelJSONParse(120), 4},
		{"string-unpack-code-SP", kernelStringUnpack(200), 4},
		{"stanford-crypto-sha256", kernelCryptoMix(64, 5), 5},
		{"stanford-crypto-pbkdf2", kernelPBKDF2(50), 6},
		{"stanford-crypto-aes", kernelAES(768), 4},
		{"splay", kernelSplay(320), 4},
		{"segmentation", kernelBlur(6144), 4},
		{"richards", kernelRichards(80), 4},
		{"regexp", kernelRegex(2600), 4},
		{"regex-dna-SP", kernelRegex(3200), 3},
		{"raytrace", kernelRayTrace(1536), 4},
		{"prepack-wtb", kernelJSONStringify(150), 4},
		{"pdfjs", kernelJSONParse(180), 4},
		{"OfflineAssembler", kernelGameboy(160), 4},
		{"octane-zlib", kernelZlib(3072), 4},
		{"octane-code-load", kernelStringUnpack(240), 4},
		{"navier-stokes", kernelFloatMM(22), 4},
		{"n-body-SP", kernelNBody(56), 6},
		{"multi-inspector-code-load", kernelJSONParse(140), 4},
		{"ML", kernelFloatMM(18), 6},
		{"mandreel", kernelGameboy(224), 4},
		{"lebab-wtb", kernelStringUnpack(180), 4},
		{"json-stringify-inspector", kernelJSONStringify(170), 4},
		{"json-parse-inspector", kernelJSONParse(170), 4},
		{"jshint-wtb", kernelRegex(2000), 4},
		{"hash-map", kernelHashMap(640), 3},
		{"gbemu", kernelGameboy(288), 3},
		{"gaussian-blur", kernelBlur(7168), 4},
		{"float-mm.c", kernelFloatMM(26), 3},
		{"FlightPlanner", kernelAStar(36), 4},
		{"first-inspector-code-load", kernelJSONParse(100), 5},
		{"espree-wtb", kernelRegex(1800), 4},
		{"earley-boyer", kernelSplay(448), 3},
		{"delta-blue", kernelDeltaBlue(384), 16},
		{"date-format-xparb-SP", kernelStringUnpack(140), 5},
		{"date-format-tofte-SP", kernelStringUnpack(120), 5},
		{"crypto-sha1-SP", kernelCryptoMix(48, 4), 6},
		{"crypto-md5-SP", kernelCryptoMix(40, 4), 6},
		{"crypto-aes-SP", kernelAES(640), 4},
		{"crypto", kernelCryptoMix(80, 5), 4},
		{"coffeescript-wtb", kernelRegex(1600), 4},
		{"chai-wtb", kernelHashMap(384), 4},
		{"cdjs", kernelAStar(32), 4},
		{"Box2D", kernelNBody(64), 5},
		{"bomb-workers", kernelZlib(2048), 4},
		{"Basic", kernelGameboy(128), 5},
		{"base64-SP", kernelDesaturate(6144), 4},
		{"babylon-wtb", kernelJSONParse(150), 4},
		{"Babylon", kernelJSONParse(130), 4},
		{"async-fs", kernelHashMap(320), 4},
		{"Air", kernelRichards(72), 4},
		{"ai-astar", kernelAStar(38), 4},
		{"acorn-wtb", kernelRegex(1700), 4},
		{"3d-raytrace-SP", kernelRayTrace(1280), 4},
		{"3d-cube-SP", kernelFloatMM(16), 6},
	}
	out := make([]Benchmark, 0, len(specs)+1)
	for _, s := range specs {
		out = append(out, Benchmark{Suite: "jetstream2", Name: s.name, Setup: s.setup, N: s.n, Iters: 3})
	}
	return out
}

// Suites returns every browser suite keyed by name.
func Suites() map[string][]Benchmark {
	return map[string][]Benchmark{
		"dromaeo":    Dromaeo(),
		"kraken":     Kraken(),
		"octane":     Octane(),
		"jetstream2": JetStream2(),
	}
}
