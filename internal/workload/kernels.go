// Package workload defines the benchmark suites of the paper's
// evaluation (§5.2, §5.3): the call-gate micro-benchmarks and
// browser-suite workloads shaped like Dromaeo, Kraken, Octane and
// JetStream2. The absolute work done differs from the original suites —
// they run on a simulated machine — but each workload preserves the
// property the paper's analysis keys on: its ratio of compartment
// transitions to work done between transitions.
//
// Compute kernels run entirely inside the untrusted JS engine (few
// transitions, like Kraken/Octane), while DOM and jslib workloads call
// browser bindings in tight loops (many transitions, like Dromaeo's dom
// and jslib sub-suites).
package workload

import "fmt"

// Each kernel is a script defining `function bench(n)`; the harness calls
// bench repeatedly through the engine's invoke path.

// kernelFFT: radix-2-style butterfly passes over float arrays.
func kernelFFT(size int) string {
	return fmt.Sprintf(`
var re = new Array(%d);
var im = new Array(%d);
function bench(n) {
	var N = re.length;
	for (var i = 0; i < N; i++) { re[i] = sin(i * 0.1); im[i] = 0; }
	var acc = 0;
	for (var it = 0; it < n; it++) {
		for (var len = 2; len <= N; len *= 2) {
			var ang = 6.283185307179586 / len;
			for (var s = 0; s < N; s += len) {
				for (var k = 0; k < len / 2; k++) {
					var wr = cos(ang * k);
					var wi = sin(ang * k);
					var i0 = s + k; var i1 = s + k + len / 2;
					var tr = wr * re[i1] - wi * im[i1];
					var ti = wr * im[i1] + wi * re[i1];
					re[i1] = re[i0] - tr; im[i1] = im[i0] - ti;
					re[i0] = re[i0] + tr; im[i0] = im[i0] + ti;
				}
			}
		}
		acc += re[1];
	}
	return acc;
}`, size, size)
}

// kernelCryptoMix: SHA-256-shaped integer mixing rounds.
func kernelCryptoMix(words, rounds int) string {
	return fmt.Sprintf(`
var w = new IntArray(%d);
function bench(n) {
	var W = w.length;
	for (var i = 0; i < W; i++) w[i] = i * 2654435761;
	var h = 0x6a09;
	for (var it = 0; it < n; it++) {
		for (var r = 0; r < %d; r++) {
			for (var i = 0; i < W; i++) {
				var x = w[i];
				var s0 = ((x >> 7) ^ (x >> 18) ^ (x >> 3)) & 0xffffffff;
				var s1 = ((x >> 17) ^ (x >> 19) ^ (x >> 10)) & 0xffffffff;
				w[i] = (x + s0 + s1 + h) & 0xffffffff;
				h = (h ^ w[i]) & 0xffffffff;
			}
		}
	}
	return h;
}`, words, rounds)
}

// kernelAES: table-lookup substitution + xor rounds over byte blocks.
func kernelAES(blocks int) string {
	return fmt.Sprintf(`
var sbox = new IntArray(256);
var state = new IntArray(%d);
function bench(n) {
	for (var i = 0; i < 256; i++) sbox[i] = (i * 167 + 19) %% 256;
	var B = state.length;
	for (var i = 0; i < B; i++) state[i] = i %% 256;
	var key = 0x5a;
	for (var it = 0; it < n; it++) {
		for (var r = 0; r < 10; r++) {
			for (var i = 0; i < B; i++) {
				state[i] = sbox[(state[i] ^ key) & 0xff];
			}
			key = (key * 3 + r) & 0xff;
		}
	}
	return state[0];
}`, blocks)
}

// kernelPBKDF2: repeated HMAC-shaped mixing with a rotating salt.
func kernelPBKDF2(iters int) string {
	return fmt.Sprintf(`
var block = new IntArray(16);
function bench(n) {
	var out = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < 16; i++) block[i] = i + it;
		for (var k = 0; k < %d; k++) {
			for (var i = 0; i < 16; i++) {
				var x = block[i] ^ (k * 0x9e37);
				x = (x << 5 | x >> 27) & 0xffffffff;
				block[i] = (x + block[(i + 1) %% 16]) & 0xffffffff;
			}
		}
		out ^= block[0];
	}
	return out;
}`, iters)
}

// kernelBlur: 1D gaussian-style convolution over a float image row.
func kernelBlur(width int) string {
	return fmt.Sprintf(`
var img = new Array(%d);
var out = new Array(%d);
function bench(n) {
	var W = img.length;
	for (var i = 0; i < W; i++) img[i] = (i * 7) %% 255;
	for (var it = 0; it < n; it++) {
		for (var i = 2; i < W - 2; i++) {
			out[i] = img[i-2] * 0.06 + img[i-1] * 0.24 + img[i] * 0.4 +
			         img[i+1] * 0.24 + img[i+2] * 0.06;
		}
		for (var i = 2; i < W - 2; i++) img[i] = out[i];
	}
	return img[10];
}`, width, width)
}

// kernelDesaturate: per-pixel channel averaging over packed RGB ints.
func kernelDesaturate(pixels int) string {
	return fmt.Sprintf(`
var px = new IntArray(%d);
function bench(n) {
	var P = px.length;
	for (var i = 0; i < P; i++) px[i] = (i * 2654435761) & 0xffffff;
	var sum = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < P; i++) {
			var v = px[i];
			var r = (v >> 16) & 0xff; var g = (v >> 8) & 0xff; var b = v & 0xff;
			var gray = floor((r + g + b) / 3);
			px[i] = (gray << 16) | (gray << 8) | gray;
		}
		sum += px[0];
	}
	return sum;
}`, pixels)
}

// kernelDarkroom: gamma/levels floating-point per-pixel math.
func kernelDarkroom(pixels int) string {
	return fmt.Sprintf(`
var img = new Array(%d);
function bench(n) {
	var P = img.length;
	for (var i = 0; i < P; i++) img[i] = (i %% 256) / 255;
	var acc = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < P; i++) {
			var v = img[i];
			v = pow(v, 0.8) * 1.1 - 0.02;
			if (v < 0) v = 0;
			if (v > 1) v = 1;
			img[i] = v;
		}
		acc += img[5];
	}
	return acc;
}`, pixels)
}

// kernelAStar: greedy best-first search over a weighted grid.
func kernelAStar(dim int) string {
	return fmt.Sprintf(`
var D = %d;
var cost = new IntArray(D * D);
var dist = new IntArray(D * D);
function bench(n) {
	for (var i = 0; i < D * D; i++) cost[i] = 1 + ((i * 31) %% 7);
	var total = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < D * D; i++) dist[i] = 1000000;
		dist[0] = 0;
		// Dynamic-programming sweep (A*-shaped relaxation over the grid).
		for (var pass = 0; pass < 2; pass++) {
			for (var y = 0; y < D; y++) {
				for (var x = 0; x < D; x++) {
					var i = y * D + x;
					var d = dist[i];
					if (x > 0 && dist[i-1] + cost[i] < d) d = dist[i-1] + cost[i];
					if (y > 0 && dist[i-D] + cost[i] < d) d = dist[i-D] + cost[i];
					dist[i] = d;
				}
			}
		}
		total += dist[D * D - 1];
	}
	return total;
}`, dim)
}

// kernelJSONParse: scanning a synthetic JSON-ish string into numbers.
func kernelJSONParse(records int) string {
	return fmt.Sprintf(`
var doc = "";
function buildDoc() {
	doc = "[";
	for (var i = 0; i < %d; i++) {
		doc = doc + "{\"id\":" + i + ",\"price\":" + (i * 3 %% 97) + "}";
		if (i < %d - 1) doc = doc + ",";
	}
	doc = doc + "]";
}
function bench(n) {
	if (doc.length == 0) buildDoc();
	var total = 0;
	for (var it = 0; it < n; it++) {
		var sum = 0;
		var i = 0;
		while (i < doc.length) {
			var c = doc.charCodeAt(i);
			if (c >= 48 && c <= 57) {
				var v = 0;
				while (i < doc.length && doc.charCodeAt(i) >= 48 && doc.charCodeAt(i) <= 57) {
					v = v * 10 + (doc.charCodeAt(i) - 48);
					i++;
				}
				sum += v;
			} else {
				i++;
			}
		}
		total += sum;
	}
	return total;
}`, records, records)
}

// kernelJSONStringify: building a JSON-ish string from arrays.
func kernelJSONStringify(records int) string {
	return fmt.Sprintf(`
var ids = new IntArray(%d);
function bench(n) {
	var R = ids.length;
	for (var i = 0; i < R; i++) ids[i] = i * 17;
	var len = 0;
	for (var it = 0; it < n; it++) {
		var s = "[";
		for (var i = 0; i < R; i++) {
			s = s + "{\"v\":" + ids[i] + "}";
		}
		s = s + "]";
		len += s.length;
	}
	return len;
}`, records)
}

// kernelNBody: gravitational n-body velocity updates.
func kernelNBody(bodies int) string {
	return fmt.Sprintf(`
var B = %d;
var px = new Array(B); var py = new Array(B);
var vx = new Array(B); var vy = new Array(B);
function bench(n) {
	for (var i = 0; i < B; i++) { px[i] = i; py[i] = i * 0.5; vx[i] = 0; vy[i] = 0; }
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < B; i++) {
			var ax = 0; var ay = 0;
			for (var j = 0; j < B; j++) {
				if (i == j) continue;
				var dx = px[j] - px[i]; var dy = py[j] - py[i];
				var d2 = dx * dx + dy * dy + 0.1;
				var inv = 1 / (d2 * sqrt(d2));
				ax += dx * inv; ay += dy * inv;
			}
			vx[i] += ax * 0.01; vy[i] += ay * 0.01;
		}
		for (var i = 0; i < B; i++) { px[i] += vx[i] * 0.01; py[i] += vy[i] * 0.01; }
	}
	return px[0] + py[B - 1];
}`, bodies)
}

// kernelSplay: binary search tree with root rotations, in index arrays.
func kernelSplay(nodes int) string {
	return fmt.Sprintf(`
var CAP = %d;
var key = new IntArray(CAP);
var left = new IntArray(CAP);
var right = new IntArray(CAP);
var size = 0; var root = 0;
function insert(k) {
	if (size >= CAP) return 0;
	key[size] = k; left[size] = 0; right[size] = 0;
	size++;
	if (size == 1) { root = 0; return 0; }
	var cur = root;
	while (true) {
		if (k < key[cur]) {
			if (left[cur] == 0 && cur != 0) { left[cur] = size - 1; break; }
			if (left[cur] == 0) { left[cur] = size - 1; break; }
			cur = left[cur];
		} else {
			if (right[cur] == 0) { right[cur] = size - 1; break; }
			cur = right[cur];
		}
	}
	return size - 1;
}
function find(k) {
	var cur = root; var steps = 0;
	while (cur != 0 || steps == 0) {
		if (key[cur] == k) return steps;
		cur = k < key[cur] ? left[cur] : right[cur];
		steps++;
		if (steps > 64) break;
	}
	return steps;
}
function bench(n) {
	var total = 0;
	for (var it = 0; it < n; it++) {
		size = 0; root = 0;
		var seed = 12345;
		for (var i = 0; i < CAP - 1; i++) {
			seed = nextSeed(seed);
			insert(seed %% 100000);
		}
		for (var i = 0; i < 200; i++) total += find(i * 371);
	}
	return total;
}`, nodes)
}

// kernelRichards: a task-queue scheduler simulation.
func kernelRichards(tasks int) string {
	return fmt.Sprintf(`
var T = %d;
var state = new IntArray(T);
var workq = new IntArray(T);
var done = new IntArray(T);
function bench(n) {
	var total = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < T; i++) { state[i] = i %% 3; workq[i] = (i * 7) %% T; done[i] = 0; }
		var active = T;
		var guard = 0;
		while (active > 0 && guard < T * 50) {
			guard++;
			for (var i = 0; i < T; i++) {
				if (done[i]) continue;
				if (state[i] == 0) { state[i] = 1; }
				else if (state[i] == 1) { workq[i] = (workq[i] * 3 + 1) %% T; state[i] = 2; }
				else { done[i] = 1; active--; total++; }
			}
		}
	}
	return total;
}`, tasks)
}

// kernelDeltaBlue: chains of one-way constraints propagated to fixpoint.
func kernelDeltaBlue(vars int) string {
	return fmt.Sprintf(`
var V = %d;
var val = new IntArray(V);
var srcOf = new IntArray(V);
function bench(n) {
	var total = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < V; i++) { val[i] = 0; srcOf[i] = i == 0 ? 0 : i - 1; }
		val[0] = it + 1;
		// Propagate the chain until stable.
		for (var pass = 0; pass < 3; pass++) {
			var changed = 0;
			for (var i = 1; i < V; i++) {
				var want = val[srcOf[i]] + 1;
				if (val[i] != want) { val[i] = want; changed++; }
			}
			if (changed == 0) break;
		}
		total += val[V - 1];
	}
	return total;
}`, vars)
}

// kernelRayTrace: sphere-intersection inner loops.
func kernelRayTrace(rays int) string {
	return fmt.Sprintf(`
var R = %d;
function bench(n) {
	var hits = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < R; i++) {
			var ox = (i %% 32) * 0.1 - 1.6;
			var oy = floor(i / 32) * 0.1 - 1.6;
			// Ray from (ox, oy, -5) toward +z against a unit sphere at origin.
			var b = -5 * -1;
			var c = ox * ox + oy * oy + 25 - 1;
			var disc = b * b - c;
			if (disc > 0) {
				var t = b - sqrt(disc);
				hits += t > 0 ? 1 : 0;
			}
		}
	}
	return hits;
}`, rays)
}

// kernelRegex: hand-rolled pattern scanning over generated text.
func kernelRegex(textLen int) string {
	return fmt.Sprintf(`
var text = "";
function buildText() {
	var seed = 99;
	for (var i = 0; i < %d; i++) {
		seed = nextSeed(seed);
		var r = seed %% 26;
		text = text + fromCharCode(97 + r);
	}
}
function bench(n) {
	if (text.length == 0) buildText();
	var matches = 0;
	for (var it = 0; it < n; it++) {
		// Count occurrences of the pattern [aeiou][bcd]
		for (var i = 0; i + 1 < text.length; i++) {
			var a = text.charCodeAt(i);
			var b = text.charCodeAt(i + 1);
			var isV = a == 97 || a == 101 || a == 105 || a == 111 || a == 117;
			var isC = b >= 98 && b <= 100;
			if (isV && isC) matches++;
		}
	}
	return matches;
}`, textLen)
}

// kernelZlib: run-length encode/decode cycles over int data.
func kernelZlib(size int) string {
	return fmt.Sprintf(`
var data = new IntArray(%d);
var enc = new IntArray(%d * 2);
function bench(n) {
	var S = data.length;
	for (var i = 0; i < S; i++) data[i] = floor(i / 9) %% 17;
	var total = 0;
	for (var it = 0; it < n; it++) {
		// encode
		var o = 0;
		var i = 0;
		while (i < S) {
			var v = data[i]; var run = 1;
			while (i + run < S && data[i + run] == v && run < 255) run++;
			enc[o] = v; enc[o + 1] = run; o += 2;
			i += run;
		}
		// decode and checksum
		var sum = 0;
		for (var k = 0; k < o; k += 2) sum += enc[k] * enc[k + 1];
		total += sum;
	}
	return total;
}`, size, size)
}

// kernelGameboy: a tiny bytecode machine executing a looped program.
func kernelGameboy(progLen int) string {
	return fmt.Sprintf(`
var prog = new IntArray(%d);
var mem = new IntArray(256);
function bench(n) {
	var P = prog.length;
	for (var i = 0; i < P; i++) prog[i] = (i * 11) %% 5;
	var acc = 0;
	for (var it = 0; it < n; it++) {
		var pc = 0; var a = it; var steps = 0;
		while (steps < P * 8) {
			var op = prog[pc];
			if (op == 0) a = (a + 1) & 0xffff;
			else if (op == 1) a = (a << 1) & 0xffff;
			else if (op == 2) mem[a & 0xff] = a;
			else if (op == 3) a = (a ^ mem[(a + 1) & 0xff]) & 0xffff;
			else a = (a - 1) & 0xffff;
			pc = (pc + 1) %% P;
			steps++;
		}
		acc += a;
	}
	return acc;
}`, progLen)
}

// kernelFloatMM: dense matrix multiply.
func kernelFloatMM(dim int) string {
	return fmt.Sprintf(`
var D = %d;
var A = new Array(D * D);
var B = new Array(D * D);
var C = new Array(D * D);
function bench(n) {
	for (var i = 0; i < D * D; i++) { A[i] = i * 0.5; B[i] = (D * D - i) * 0.25; }
	var acc = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < D; i++) {
			for (var j = 0; j < D; j++) {
				var s = 0;
				for (var k = 0; k < D; k++) s += A[i * D + k] * B[k * D + j];
				C[i * D + j] = s;
			}
		}
		acc += C[0];
	}
	return acc;
}`, dim)
}

// kernelHashMap: open-addressing hash table churn.
func kernelHashMap(capacity int) string {
	return fmt.Sprintf(`
var CAP = %d;
var keys = new IntArray(CAP);
var vals = new IntArray(CAP);
function bench(n) {
	var total = 0;
	for (var it = 0; it < n; it++) {
		for (var i = 0; i < CAP; i++) { keys[i] = 0; vals[i] = 0; }
		for (var i = 1; i < CAP - CAP / 4; i++) {
			var k = (i * 2654435761) & 0x7fffffff;
			var slot = k %% CAP;
			while (keys[slot] != 0) slot = (slot + 1) %% CAP;
			keys[slot] = k; vals[slot] = i;
		}
		for (var i = 1; i < CAP - CAP / 4; i += 3) {
			var k = (i * 2654435761) & 0x7fffffff;
			var slot = k %% CAP;
			while (keys[slot] != 0 && keys[slot] != k) slot = (slot + 1) %% CAP;
			total += vals[slot];
		}
	}
	return total;
}`, capacity)
}

// kernelObjects: property-table churn over engine objects (records with
// named fields, the shape many Dromaeo JS tests exercise).
func kernelObjects(records int) string {
	return fmt.Sprintf(`
var R = %d;
function bench(n) {
	var total = 0;
	for (var it = 0; it < n; it++) {
		var sum = {count: 0, weight: 0};
		for (var i = 0; i < R; i++) {
			var rec = {id: i, price: (i * 7) %% 97, qty: (i %% 5) + 1};
			rec.total = rec.price * rec.qty;
			sum.count += 1;
			sum.weight += rec.total;
		}
		total += sum.weight;
	}
	return total;
}`, records)
}

// kernelStringUnpack: splitting and reassembling delimited strings.
func kernelStringUnpack(fields int) string {
	return fmt.Sprintf(`
var packed = "";
function buildPacked() {
	for (var i = 0; i < %d; i++) packed = packed + "field" + i + ";";
}
function bench(n) {
	if (packed.length == 0) buildPacked();
	var total = 0;
	for (var it = 0; it < n; it++) {
		var start = 0; var count = 0;
		for (var i = 0; i < packed.length; i++) {
			if (packed.charCodeAt(i) == 59) {
				count += i - start;
				start = i + 1;
			}
		}
		total += count;
	}
	return total;
}`, fields)
}
