package workload

import "testing"

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    FaultSpec
		wantErr bool
	}{
		{in: "", want: FaultSpec{}},
		{in: "0", want: FaultSpec{}},
		{in: "40", want: FaultSpec{Every: 40}},
		{in: "tenant3:0.2", want: FaultSpec{Tenant: "tenant3", Every: 5}},
		{in: "tenant3:5", want: FaultSpec{Tenant: "tenant3", Every: 5}},
		{in: "tenant003:0.5", want: FaultSpec{Tenant: "tenant003", Every: 2}},
		{in: ":0.2", wantErr: true},
		{in: "tenant3:", wantErr: true},
		{in: "tenant3:1.5", wantErr: true},
		{in: "tenant3:-4", wantErr: true},
		{in: "bogus", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseFaultSpec(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseFaultSpec(%q) = %+v, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseFaultSpec(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
}

func TestFaultSpecHits(t *testing.T) {
	s := FaultSpec{Tenant: "t3", Every: 5}
	if s.Hits("t1", 5) {
		t.Error("hit on wrong tenant")
	}
	if s.Hits("t3", 4) || !s.Hits("t3", 5) || !s.Hits("t3", 10) {
		t.Error("period arithmetic wrong")
	}
	global := FaultSpec{Every: 2}
	if !global.Hits("anyone", 2) || global.Hits("anyone", 3) {
		t.Error("global spec scoping wrong")
	}
	if (FaultSpec{}).Hits("t3", 5) {
		t.Error("zero spec injected")
	}
}
