// Package supervise is the compartment fault supervisor: it turns fatal
// untrusted-compartment failures — PKUERR/MAPERR faults inside U, or an
// untrusted Func panicking mid-call — into recoverable, policy-driven
// events.
//
// A supervised FFI call installs a recovery point (ffi.Thread.Checkpoint)
// at the T→U boundary. When the call fails, the supervisor unwinds the
// gate stack back to the trusted frame with the PKRU register provably
// restored (ffi.Thread.Unwind re-verifies the installed value exactly as
// a gate's own self-check does), wraps the failure in a typed
// *CompartmentError, and applies the configured Policy:
//
//   - Abort: no supervision — the failure propagates unchanged, matching
//     the paper's fail-stop semantics (§3.3).
//   - Retry: the call is re-executed up to MaxRetries times with
//     exponential backoff, for transient failures.
//   - Quarantine: the untrusted pkalloc pool is epoch-bumped, scrubbed and
//     reset so a corrupted MU cannot poison the next request; the failed
//     call itself is dropped.
//   - Heal: for PKUERR faults whose provenance shadow resolves to a
//     concrete MT allocation, the object's pages are retagged to the
//     shared key in place (vm.Space.SetPageKey) and the allocation site is
//     marked untrusted-from-now-on — exactly the rewrite a profiler re-run
//     would have produced — then the call is retried. The healed sites
//     form a profile delta the user can persist.
//
// Recovery never weakens enforcement for anyone else: healing retags only
// the faulting object's pages, quarantine touches only MU, and every
// unwind re-verifies PKRU before trusted code resumes.
package supervise

import (
	"fmt"
	"strings"
	"time"
)

// Policy selects how the supervisor responds to a compartment failure.
type Policy uint8

const (
	// Abort disables recovery: failures propagate and kill the run.
	Abort Policy = iota
	// Retry re-executes the failed call a bounded number of times.
	Retry
	// Quarantine resets the untrusted pool and drops the failed call.
	Quarantine
	// Heal migrates the misclassified allocation site MT→MU and retries.
	Heal
)

func (p Policy) String() string {
	switch p {
	case Abort:
		return "abort"
	case Retry:
		return "retry"
	case Quarantine:
		return "quarantine"
	case Heal:
		return "heal"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy parses a policy name as accepted by the -recover CLI flags.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "abort", "":
		return Abort, nil
	case "retry":
		return Retry, nil
	case "quarantine":
		return Quarantine, nil
	case "heal":
		return Heal, nil
	default:
		return Abort, fmt.Errorf("supervise: unknown policy %q (want abort, retry, quarantine or heal)", s)
	}
}

// Defaults for Config fields left zero.
const (
	// DefaultMaxRetries bounds re-executions of one supervised call.
	DefaultMaxRetries = 3
	// DefaultBudget bounds recovery actions across the whole program: a
	// workload that keeps failing must eventually surface, not loop
	// through an unbounded heal/quarantine cycle.
	DefaultBudget = 64
	// DefaultEscalateAfter is how many per-domain quarantines one domain
	// may absorb before the supervisor escalates to the global tier and
	// quarantines the shared MU pool as well: a tenant that keeps
	// corrupting its own heap eventually forfeits the benefit of the
	// doubt that the damage stayed inside it.
	DefaultEscalateAfter = 8
)

// Config parameterizes a Supervisor.
type Config struct {
	// Policy is the recovery policy; Abort (the zero value) disables
	// supervision entirely.
	Policy Policy
	// MaxRetries bounds how many times one supervised call may be
	// re-executed after recovery (Retry and Heal policies). Zero means
	// DefaultMaxRetries; negative means no retries.
	MaxRetries int
	// Backoff is the base delay before the first retry; attempt k sleeps
	// Backoff << k (exponential). Zero disables sleeping, which is what
	// tests and the simulator's deterministic paths want.
	Backoff time.Duration
	// Budget bounds the total number of recovery actions (retries,
	// quarantines, heals) the program may spend. Zero means
	// DefaultBudget; negative means unlimited.
	Budget int
	// EscalateAfter is the per-domain quarantine count at which the
	// supervisor escalates a domain-scoped quarantine to the global tier
	// (the shared MU pool is scrubbed too). Zero means
	// DefaultEscalateAfter; negative disables escalation.
	EscalateAfter int
}

func (c Config) maxRetries() int {
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c Config) budget() int {
	if c.Budget == 0 {
		return DefaultBudget
	}
	return c.Budget
}

func (c Config) escalateAfter() int {
	if c.EscalateAfter == 0 {
		return DefaultEscalateAfter
	}
	if c.EscalateAfter < 0 {
		return 0
	}
	return c.EscalateAfter
}

// Terminal outcomes a supervised call can end with (CompartmentError.Outcome
// and the telemetry outcome label). "recovered" additionally labels calls
// that succeeded after one or more recovery actions.
const (
	OutcomeRecovered       = "recovered"
	OutcomeRetriesExceeded = "retries_exhausted"
	OutcomeQuarantined     = "quarantined"
	OutcomeUnhealable      = "unhealable"
	OutcomeHealFailed      = "heal_failed"
	OutcomeBudgetExceeded  = "budget_exhausted"
)

// PanicError wraps a panic recovered from an untrusted Func so it can
// travel the error path like a fault does.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("supervise: untrusted callee panicked: %v", e.Value)
}

// CompartmentError is the typed error a supervised call fails with after
// recovery is exhausted or declined. It wraps the underlying cause (a
// *vm.Fault via the ffi error chain, or a *PanicError), so errors.As
// still reaches the fault for forensics.
type CompartmentError struct {
	// Call labels the failed call, "lib.fn" for Supervisor.Call.
	Call string
	// Domain is the tenant the failure was attributed to (the trace
	// context's tenant label), "" when the failure could not be scoped to
	// a domain. Admission layers key their circuit breakers on it.
	Domain string
	// Policy is the policy that was in force.
	Policy Policy
	// Outcome is the terminal outcome (one of the Outcome* constants).
	Outcome string
	// Attempts is how many times the call body ran.
	Attempts int
	// Err is the underlying failure of the final attempt.
	Err error
}

func (e *CompartmentError) Error() string {
	if e.Domain != "" {
		return fmt.Sprintf("supervise: %s [domain %s] failed under policy %s (%s after %d attempt(s)): %v",
			e.Call, e.Domain, e.Policy, e.Outcome, e.Attempts, e.Err)
	}
	return fmt.Sprintf("supervise: %s failed under policy %s (%s after %d attempt(s)): %v",
		e.Call, e.Policy, e.Outcome, e.Attempts, e.Err)
}

func (e *CompartmentError) Unwrap() error { return e.Err }
