package supervise

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ffi"
	"repro/internal/obs"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/sig"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Deps are the collaborators a Supervisor recovers through.
type Deps struct {
	// Alloc is the program's split allocator (required for Quarantine and
	// Heal: pool reset and trusted-region ownership checks).
	Alloc *pkalloc.Allocator
	// Recorder is the forensics shadow store. Heal needs it to resolve a
	// fault address to the allocation site to migrate, and to attach the
	// would-have-been crash report to the recovery event.
	Recorder *obs.Recorder
	// Ring, when non-nil, receives Recover/Heal trace events.
	Ring *trace.Ring
	// Telemetry, when non-nil, registers the recovery metric families.
	Telemetry *telemetry.Registry
}

// Event is one recovery action the supervisor took, kept in order for
// reports and tests. Averted, when non-nil, is the crash report the run
// would have died with had the policy been Abort.
type Event struct {
	Seq     int    `json:"seq"`
	Policy  string `json:"policy"`
	Action  string `json:"action"` // "retry", "quarantine" or "heal"
	Call    string `json:"call"`
	Attempt int    `json:"attempt"`
	Cause   string `json:"cause"`
	Site    string `json:"site,omitempty"` // healed allocation site
	// Domain labels the pool a quarantine epoch belongs to: the tenant
	// whose pool was scrubbed, or "" for the global MU tier. Without it
	// the bare epoch number is ambiguous across pools.
	Domain  string      `json:"domain,omitempty"`
	Epoch   uint64      `json:"epoch,omitempty"` // pool epoch after a quarantine
	Averted *obs.Report `json:"averted,omitempty"`
}

// Supervisor applies one recovery policy to supervised calls. It is safe
// for concurrent use by many threads; a nil *Supervisor is a no-op
// pass-through so callers can wire it unconditionally.
type Supervisor struct {
	cfg   Config
	alloc *pkalloc.Allocator
	rec   *obs.Recorder
	ring  *trace.Ring
	tel   *supTelemetry

	mu         sync.Mutex
	healed     map[profile.AllocID]bool
	delta      *profile.Profile
	events     []Event
	budgetLeft int
	unlimited  bool
	domainQuar map[string]int // per-domain quarantine counts, for escalation
}

type supTelemetry struct {
	attempts    *telemetry.Counter
	outcomes    *telemetry.CounterVec
	actions     *telemetry.CounterVec
	healedSites *telemetry.Counter
	quarantines *telemetry.CounterVec
}

// New builds a supervisor. A Config with the Abort policy yields nil: no
// recovery point is installed and supervised calls are plain calls.
func New(cfg Config, deps Deps) *Supervisor {
	if cfg.Policy == Abort {
		return nil
	}
	s := &Supervisor{
		cfg:        cfg,
		alloc:      deps.Alloc,
		rec:        deps.Recorder,
		ring:       deps.Ring,
		healed:     make(map[profile.AllocID]bool),
		delta:      profile.New(),
		budgetLeft: cfg.budget(),
		unlimited:  cfg.budget() < 0,
		domainQuar: make(map[string]int),
	}
	if reg := deps.Telemetry; reg != nil {
		s.tel = &supTelemetry{
			attempts: reg.Counter("pkrusafe_recovery_attempts_total",
				"Supervised call bodies executed (first attempts plus re-executions)."),
			outcomes: reg.CounterVec("pkrusafe_recovery_outcomes_total",
				"Supervised calls by terminal outcome.", "outcome"),
			actions: reg.CounterVec("pkrusafe_recovery_actions_total",
				"Recovery actions taken, by kind.", "action"),
			healedSites: reg.Counter("pkrusafe_recovery_healed_sites_total",
				"Distinct allocation sites migrated MT to MU by healing."),
			quarantines: reg.CounterVec("pkrusafe_recovery_quarantines_total",
				"Pool quarantines performed, by domain (\"mu\" is the global tier).", "domain"),
		}
	}
	return s
}

// Policy returns the configured policy (Abort for a nil supervisor).
func (s *Supervisor) Policy() Policy {
	if s == nil {
		return Abort
	}
	return s.cfg.Policy
}

// Call invokes lib.fn through t under supervision: a recovery point at
// the current (trusted) frame, policy-driven recovery on failure.
func (s *Supervisor) Call(t *ffi.Thread, lib, fn string, args ...uint64) ([]uint64, error) {
	if s == nil {
		return t.Call(lib, fn, args...)
	}
	var res []uint64
	err := s.Shield(t, lib+"."+fn, func() error {
		var e error
		res, e = t.Call(lib, fn, args...)
		return e
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Shield runs body under a recovery point on t. label names the protected
// work in events and errors (pkru-servo uses one Shield per request). The
// body may be re-executed by the Retry and Heal policies, so it must be
// safe to run again after an unwind — a cross-compartment call is.
func (s *Supervisor) Shield(t *ffi.Thread, label string, body func() error) error {
	if s == nil {
		return body()
	}
	cp := t.Checkpoint()
	for attempt := 1; ; attempt++ {
		if tel := s.tel; tel != nil {
			tel.attempts.Inc()
		}
		err := runProtected(body)
		if err == nil {
			if attempt > 1 {
				s.noteOutcome(OutcomeRecovered)
			}
			return nil
		}
		// Gate tampering and runtime aborts are deliberate kills, not
		// compartment failures; never recover across them.
		if errors.Is(err, ffi.ErrGateTampered) || errors.Is(err, ffi.ErrAborted) {
			return err
		}
		// Only compartment failures — memory faults and callee panics —
		// are recoverable events. An ordinary error returned by the callee
		// is part of its API and propagates unchanged.
		if !isCompartmentFailure(err) {
			return err
		}
		// The request-scoped trace is the forensic record an operator will
		// read: the fault and the recovery action that answered it land on
		// the same trace the gate spans are already on, and a faulted
		// trace is always retained.
		tc := t.TraceContext()
		tc.MarkFault(err.Error())
		// Unwind to the recovery point: truncate anything left on the
		// gate/trust stacks and re-verify PKRU before trusted code
		// continues. Gates self-unwind on both error returns and panics,
		// so this normally only proves the state; a verification failure
		// is terminal.
		if uerr := t.Unwind(cp); uerr != nil {
			return uerr
		}
		// Post-unwind backstop: Unwind verified the write it performed, but
		// if the rights now in force still escalate the checkpoint's — a
		// compartment excursion survived re-derivation, meaning the
		// bookkeeping itself was suborned — recovery must not resume
		// trusted code on them. This generalizes the gates'
		// write-then-readback to the whole recovery path.
		if t.VM.Rights().Escalates(cp.Rights()) {
			t.Runtime().Abort()
			return fmt.Errorf("%w: post-unwind rights %v escalate checkpoint %v",
				ffi.ErrGateTampered, t.VM.Rights(), cp.Rights())
		}
		// The faulting domain is resolved from the request's trace context:
		// its tenant label is the domain the gates of this request entered,
		// so a Quarantine policy can scrub that tenant's pool alone instead
		// of every tenant's heap. A label that names no domain pool (the
		// legacy two-compartment workload, or an unattributable fault)
		// falls back to the global MU tier inside quarantine().
		before := s.eventCount()
		done, terr := s.recoverOnce(label, tc.Tenant(), err, attempt)
		if ev, ok := s.lastEventSince(before); ok {
			tc.MarkRecovery(ev.Action, ev.Cause)
		}
		if done {
			return terr
		}
	}
}

// eventCount returns the current length of the recovery log.
func (s *Supervisor) eventCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// lastEventSince returns the newest recovery event if any were noted
// after the log held n entries.
func (s *Supervisor) lastEventSince(n int) (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) <= n {
		return Event{}, false
	}
	return s.events[len(s.events)-1], true
}

// isCompartmentFailure reports whether err is the kind of failure
// supervision exists for: an unhandled memory fault or a recovered panic.
func isCompartmentFailure(err error) bool {
	var f *vm.Fault
	var pe *PanicError
	return errors.As(err, &f) || errors.As(err, &pe)
}

// runProtected executes body, converting a panic into a *PanicError so an
// untrusted Func crashing mid-call travels the same recovery path as a
// fault.
func runProtected(body func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v}
		}
	}()
	return body()
}

// recoverOnce applies one round of the policy to a failed attempt.
// domain is the tenant the failure was attributed to ("" when none). It
// returns done=true with the terminal error when the call must fail, or
// done=false when the caller should re-execute the body.
func (s *Supervisor) recoverOnce(label, domain string, cause error, attempt int) (done bool, terr error) {
	if !s.takeBudget() {
		return true, s.terminal(label, domain, OutcomeBudgetExceeded, attempt, cause)
	}
	switch s.cfg.Policy {
	case Retry:
		if attempt > s.cfg.maxRetries() {
			return true, s.terminal(label, domain, OutcomeRetriesExceeded, attempt, cause)
		}
		s.note(Event{Action: "retry", Call: label, Attempt: attempt, Cause: cause.Error(), Domain: domain})
		s.backoff(attempt)
		return false, nil

	case Quarantine:
		if qerr := s.quarantine(label, domain, attempt, cause); qerr != nil {
			return true, s.terminal(label, domain, OutcomeQuarantined, attempt, qerr)
		}
		return true, s.terminal(label, domain, OutcomeQuarantined, attempt, cause)

	case Heal:
		entry, rep, ok := s.resolveSite(cause)
		if !ok {
			// Nothing to heal (panic, MAPERR, untracked or non-MT
			// address): scrub the faulting tenant's pool (or MU) anyway so
			// whatever the failing callee left behind cannot poison later
			// requests, and fail the call.
			_ = s.quarantine(label, domain, attempt, cause)
			return true, s.terminal(label, domain, OutcomeUnhealable, attempt, cause)
		}
		if attempt > s.cfg.maxRetries() {
			return true, s.terminal(label, domain, OutcomeRetriesExceeded, attempt, cause)
		}
		if herr := s.healSite(entry, rep, label, attempt, cause); herr != nil {
			return true, s.terminal(label, domain, OutcomeHealFailed, attempt, herr)
		}
		s.backoff(attempt)
		return false, nil

	default:
		return true, cause
	}
}

// quarantine scrubs the blast radius of a compartment failure. When the
// failure is attributed to a domain with its own pool, only that pool is
// reset (per-tenant epoch bump) — one hostile tenant's fault must not
// invalidate its neighbours' heaps. A failure with no attributable pool
// lands on the global tier: the shared MU pool, the original
// whole-untrusted-world quarantine. A domain that keeps getting
// quarantined escalates to the global tier too (Config.EscalateAfter).
func (s *Supervisor) quarantine(label, domain string, attempt int, cause error) error {
	if s.alloc == nil {
		return fmt.Errorf("supervise: no allocator to quarantine: %w", cause)
	}
	if domain != "" {
		epoch, qerr := s.alloc.QuarantineDomain(domain)
		switch {
		case qerr == nil:
			s.mu.Lock()
			s.domainQuar[domain]++
			n := s.domainQuar[domain]
			s.mu.Unlock()
			s.note(Event{Action: "quarantine", Call: label, Attempt: attempt,
				Cause: cause.Error(), Domain: domain, Epoch: epoch})
			if s.ring != nil {
				s.ring.Emit(trace.Event{Kind: trace.Recover, A: epoch, Note: "quarantine:" + domain})
			}
			if tel := s.tel; tel != nil {
				tel.quarantines.With(domain).Inc()
			}
			if limit := s.cfg.escalateAfter(); limit > 0 && n >= limit && n%limit == 0 {
				return s.quarantineGlobal(label, attempt, cause, "escalated:"+domain)
			}
			return nil
		case errors.Is(qerr, pkalloc.ErrNoDomainPool):
			// No pool by that name: fall through to the global tier.
		default:
			return qerr
		}
	}
	return s.quarantineGlobal(label, attempt, cause, "quarantine")
}

// quarantineGlobal resets the shared MU pool — the escalation tier, and
// the only tier for failures no domain pool claims.
func (s *Supervisor) quarantineGlobal(label string, attempt int, cause error, note string) error {
	if qerr := s.alloc.QuarantineUntrusted(); qerr != nil {
		return qerr
	}
	epoch := s.alloc.UntrustedEpoch()
	s.note(Event{Action: "quarantine", Call: label, Attempt: attempt, Cause: cause.Error(), Epoch: epoch})
	if s.ring != nil {
		s.ring.Emit(trace.Event{Kind: trace.Recover, A: epoch, Note: note})
	}
	if tel := s.tel; tel != nil {
		tel.quarantines.With("mu").Inc()
	}
	return nil
}

// DomainQuarantines returns how many times the named domain's pool has
// been quarantined by this supervisor (not the pool epoch: a pool
// quarantined by another supervisor, or before this one was built,
// counts only there).
func (s *Supervisor) DomainQuarantines(domain string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.domainQuar[domain]
}

// resolveSite decides whether cause is a healable fault: a PKUERR on the
// trusted key whose address the provenance shadow maps to a live MT
// allocation. It also captures the crash report the run would have died
// with, before healing mutates the page keys the report renders.
func (s *Supervisor) resolveSite(cause error) (entry sEntry, rep *obs.Report, ok bool) {
	var f *vm.Fault
	if !errors.As(cause, &f) {
		return sEntry{}, nil, false
	}
	if f.Info.Sig != sig.SIGSEGV || f.Info.Code != sig.CodePKUErr {
		return sEntry{}, nil, false
	}
	if s.alloc == nil || s.rec == nil {
		return sEntry{}, nil, false
	}
	if f.Info.PKey != uint8(s.alloc.TrustedKey()) {
		return sEntry{}, nil, false
	}
	e, found := s.rec.Lookup(f.Info.Addr)
	if !found || !s.alloc.TrustedRegion().Contains(e.Base) {
		return sEntry{}, nil, false
	}
	rep, _ = s.rec.Capture(cause)
	return sEntry{base: e.Base, size: e.Size, id: e.ID}, rep, true
}

// sEntry is the slice of provenance.Entry the supervisor needs; a local
// type keeps the obs/provenance split out of the public API.
type sEntry struct {
	base vm.Addr
	size uint64
	id   profile.AllocID
}

// healSite migrates one misclassified object MT→MU in place: the pages
// spanning [base, base+size) are retagged to the shared key 0 through
// vm.Space.SetPageKey — page-level only, so pkalloc's region ownership is
// untouched and the object's address stays valid for the retried call —
// and the site is marked untrusted so future allocations from it draw
// from MU (core.Program.AllocAt consults Healed). Healing is page
// granular, like the enforcement itself (§3.4): trusted objects sharing a
// page with the healed one become reachable from U, the same exposure a
// profiler-driven rewrite of that site would have produced one run later.
func (s *Supervisor) healSite(e sEntry, rep *obs.Report, label string, attempt int, cause error) error {
	lo := e.base.PageBase()
	hi := (e.base + vm.Addr(e.size) + vm.PageMask).PageBase()
	if hi == lo {
		hi = lo + vm.PageSize
	}
	if err := s.alloc.Space().SetPageKey(lo, uint64(hi-lo), 0); err != nil {
		return err
	}
	s.mu.Lock()
	first := !s.healed[e.id]
	s.healed[e.id] = true
	if first {
		s.delta.Add(e.id, e.size)
	}
	s.mu.Unlock()
	s.note(Event{Action: "heal", Call: label, Attempt: attempt, Cause: cause.Error(),
		Site: e.id.String(), Averted: rep})
	if s.ring != nil {
		s.ring.Emit(trace.Event{Kind: trace.Heal, A: uint64(e.base), Note: e.id.String()})
	}
	if tel := s.tel; tel != nil && first {
		tel.healedSites.Inc()
	}
	return nil
}

// Healed reports whether the site has been migrated MT→MU by healing.
// Safe on a nil supervisor.
func (s *Supervisor) Healed(id profile.AllocID) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.healed[id]
}

// Delta returns the healed sites as a profile delta — exactly the entries
// a profiling re-run would have added. Merging it into the applied
// profile and persisting removes the need to heal on the next run.
func (s *Supervisor) Delta() *profile.Profile {
	out := profile.New()
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out.Merge(s.delta)
	return out
}

// Events returns the recovery log in order.
func (s *Supervisor) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Averted returns the crash reports attached to heal events: the
// forensics of runs that would have died under the Abort policy.
func (s *Supervisor) Averted() []*obs.Report {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*obs.Report
	for _, e := range s.events {
		if e.Averted != nil {
			out = append(out, e.Averted)
		}
	}
	return out
}

// BudgetRemaining returns how many recovery actions the program may still
// spend (negative values never occur; unlimited budgets report -1).
func (s *Supervisor) BudgetRemaining() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unlimited {
		return -1
	}
	return s.budgetLeft
}

func (s *Supervisor) takeBudget() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.unlimited {
		return true
	}
	if s.budgetLeft <= 0 {
		return false
	}
	s.budgetLeft--
	return true
}

func (s *Supervisor) backoff(attempt int) {
	if s.cfg.Backoff <= 0 {
		return
	}
	time.Sleep(s.cfg.Backoff << (attempt - 1))
}

func (s *Supervisor) note(e Event) {
	s.mu.Lock()
	e.Seq = len(s.events) + 1
	e.Policy = s.cfg.Policy.String()
	s.events = append(s.events, e)
	s.mu.Unlock()
	if tel := s.tel; tel != nil {
		tel.actions.With(e.Action).Inc()
	}
}

func (s *Supervisor) noteOutcome(outcome string) {
	if tel := s.tel; tel != nil {
		tel.outcomes.With(outcome).Inc()
	}
}

func (s *Supervisor) terminal(label, domain, outcome string, attempts int, cause error) error {
	s.noteOutcome(outcome)
	return &CompartmentError{Call: label, Domain: domain, Policy: s.cfg.Policy,
		Outcome: outcome, Attempts: attempts, Err: cause}
}
