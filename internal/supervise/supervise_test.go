package supervise

import (
	"errors"
	"testing"

	"repro/internal/ffi"
	"repro/internal/mpk"
	"repro/internal/obs"
	"repro/internal/pkalloc"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// world builds a gated runtime plus the forensics recorder a Heal-policy
// supervisor resolves sites through, mirroring what core.NewProgram wires.
func world(t *testing.T) (*ffi.Runtime, *ffi.Registry, *obs.Recorder) {
	t.Helper()
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	reg := ffi.NewRegistry()
	rt := ffi.NewRuntime(reg, alloc, nil, ffi.GatesOn)
	rec := obs.NewRecorder(obs.Config{Space: space, TrustedKey: alloc.TrustedKey(), BuildConfig: "mpk"})
	rec.Install(rt.Sigs)
	return rt, reg, rec
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Abort, Retry, Quarantine, Heal} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("self-destruct"); err == nil {
		t.Error("unknown policy accepted")
	}
	if p, err := ParsePolicy(""); err != nil || p != Abort {
		t.Errorf("empty policy = %v, %v; want Abort", p, err)
	}
}

func TestAbortPolicyYieldsNilSupervisor(t *testing.T) {
	if s := New(Config{Policy: Abort}, Deps{}); s != nil {
		t.Fatal("New with Abort policy returned a supervisor")
	}
	var s *Supervisor
	if s.Policy() != Abort || s.Healed(profile.AllocID{}) || s.Events() != nil {
		t.Error("nil supervisor accessors not inert")
	}
	// Nil Shield and Call are pass-throughs.
	rt, reg, _ := world(t)
	reg.MustLibrary("u", ffi.Untrusted).Define("id", func(_ *ffi.Thread, a []uint64) ([]uint64, error) {
		return a, nil
	})
	th := rt.NewThread()
	if res, err := s.Call(th, "u", "id", 7); err != nil || len(res) != 1 || res[0] != 7 {
		t.Errorf("nil supervisor Call = %v, %v", res, err)
	}
}

func TestRetryRecoverFlaky(t *testing.T) {
	rt, reg, rec := world(t)
	secret, err := rt.Alloc.Alloc(8) // MT: untrusted access faults
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("flaky", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		calls++
		if calls < 3 {
			_, e := th.Load64(secret) // PKUERR on first two attempts
			return nil, e
		}
		return []uint64{42}, nil
	})
	tel := telemetry.NewRegistry()
	s := New(Config{Policy: Retry}, Deps{Alloc: rt.Alloc, Recorder: rec, Telemetry: tel})
	th := rt.NewThread()
	res, err := s.Call(th, "u", "flaky")
	if err != nil || len(res) != 1 || res[0] != 42 {
		t.Fatalf("supervised call = %v, %v; want [42], nil", res, err)
	}
	if calls != 3 {
		t.Errorf("callee ran %d times, want 3", calls)
	}
	if th.Depth() != 0 || th.CurrentTrust() != ffi.Trusted || th.VM.Rights() != mpk.PermitAll {
		t.Errorf("thread state after recovery: depth=%d trust=%v rights=%v",
			th.Depth(), th.CurrentTrust(), th.VM.Rights())
	}
	ev := s.Events()
	if len(ev) != 2 || ev[0].Action != "retry" || ev[1].Action != "retry" {
		t.Errorf("events = %+v, want two retries", ev)
	}
}

func TestRetryExhaustionSurfacesCompartmentError(t *testing.T) {
	rt, reg, rec := world(t)
	secret, _ := rt.Alloc.Alloc(8)
	reg.MustLibrary("u", ffi.Untrusted).Define("always_faults", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		_, e := th.Load64(secret)
		return nil, e
	})
	s := New(Config{Policy: Retry, MaxRetries: 2}, Deps{Alloc: rt.Alloc, Recorder: rec})
	th := rt.NewThread()
	_, err := s.Call(th, "u", "always_faults")
	var ce *CompartmentError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v, want *CompartmentError", err)
	}
	if ce.Outcome != OutcomeRetriesExceeded || ce.Attempts != 3 || ce.Policy != Retry {
		t.Errorf("CompartmentError = %+v", ce)
	}
	// The original fault stays reachable for forensics.
	var f *vm.Fault
	if !errors.As(err, &f) {
		t.Error("CompartmentError does not unwrap to *vm.Fault")
	}
	if th.Depth() != 0 || th.VM.Rights() != mpk.PermitAll {
		t.Error("thread not restored after exhausted retries")
	}
}

func TestOrdinaryErrorsPassThrough(t *testing.T) {
	rt, reg, rec := world(t)
	apiErr := errors.New("u: bad argument")
	calls := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("api_error", func(*ffi.Thread, []uint64) ([]uint64, error) {
		calls++
		return nil, apiErr
	})
	s := New(Config{Policy: Retry}, Deps{Alloc: rt.Alloc, Recorder: rec})
	_, err := s.Call(rt.NewThread(), "u", "api_error")
	if !errors.Is(err, apiErr) {
		t.Fatalf("error = %v, want the callee's own error", err)
	}
	var ce *CompartmentError
	if errors.As(err, &ce) {
		t.Error("ordinary error wrapped in CompartmentError")
	}
	if calls != 1 {
		t.Errorf("ordinary error retried %d times", calls)
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	rt, reg, rec := world(t)
	calls := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("crashy", func(*ffi.Thread, []uint64) ([]uint64, error) {
		calls++
		if calls == 1 {
			panic("segfault in C library")
		}
		return []uint64{1}, nil
	})
	s := New(Config{Policy: Retry}, Deps{Alloc: rt.Alloc, Recorder: rec})
	th := rt.NewThread()
	res, err := s.Call(th, "u", "crashy")
	if err != nil || len(res) != 1 {
		t.Fatalf("call after panic retry = %v, %v", res, err)
	}
	if th.Depth() != 0 || th.CurrentTrust() != ffi.Trusted {
		t.Error("gate invariants broken after recovered panic")
	}
}

func TestQuarantineResetsMUAndFailsCall(t *testing.T) {
	rt, reg, rec := world(t)
	secret, _ := rt.Alloc.Alloc(8)
	mu, err := rt.Alloc.UntrustedAlloc(16)
	if err != nil {
		t.Fatal(err)
	}
	reg.MustLibrary("u", ffi.Untrusted).Define("corrupt", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		if e := th.Store64(mu, 0xbad); e != nil { // poison MU, allowed
			return nil, e
		}
		_, e := th.Load64(secret) // then die on MT
		return nil, e
	})
	s := New(Config{Policy: Quarantine}, Deps{Alloc: rt.Alloc, Recorder: rec})
	th := rt.NewThread()
	_, err = s.Call(th, "u", "corrupt")
	var ce *CompartmentError
	if !errors.As(err, &ce) || ce.Outcome != OutcomeQuarantined {
		t.Fatalf("error = %v, want quarantined CompartmentError", err)
	}
	if got := rt.Alloc.UntrustedEpoch(); got != 1 {
		t.Errorf("MU epoch = %d, want 1", got)
	}
	// Poisoned data is scrubbed and the pool serves fresh allocations.
	var buf [8]byte
	if err := rt.Alloc.Space().Peek(mu, buf[:]); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("MU bytes not scrubbed: %v", buf)
		}
	}
	if _, err := rt.Alloc.UntrustedAlloc(16); err != nil {
		t.Errorf("MU allocation after quarantine: %v", err)
	}
	if len(s.Events()) != 1 || s.Events()[0].Action != "quarantine" || s.Events()[0].Epoch != 1 {
		t.Errorf("events = %+v", s.Events())
	}
}

func TestHealMigratesSiteAndRetries(t *testing.T) {
	rt, reg, rec := world(t)
	id := profile.AllocID{Func: "main", Block: 0, Site: 1}
	obj, err := rt.Alloc.Alloc(64) // MT object the profile missed
	if err != nil {
		t.Fatal(err)
	}
	rec.LogAlloc(uint64(obj), 64, id) // what core.AllocAt does
	neighbour, _ := rt.Alloc.Alloc(vm.PageSize)

	calls := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("write", func(th *ffi.Thread, a []uint64) ([]uint64, error) {
		calls++
		if e := th.Store64(vm.Addr(a[0]), 1337); e != nil {
			return nil, e
		}
		return nil, nil
	})
	tel := telemetry.NewRegistry()
	s := New(Config{Policy: Heal}, Deps{Alloc: rt.Alloc, Recorder: rec, Telemetry: tel})
	th := rt.NewThread()
	if _, err := s.Call(th, "u", "write", uint64(obj)); err != nil {
		t.Fatalf("healed call failed: %v", err)
	}
	if calls != 2 {
		t.Errorf("callee ran %d times, want 2 (fault, heal, retry)", calls)
	}
	// The same address now holds the untrusted write: healing is in place.
	var buf [8]byte
	if err := rt.Alloc.Space().Peek(obj, buf[:]); err != nil {
		t.Fatal(err)
	}
	if v := uint64(buf[0]) | uint64(buf[1])<<8; v != 1337 {
		t.Errorf("healed object = %d, want 1337", v)
	}
	// Site is recorded as healed with a one-entry profile delta.
	if !s.Healed(id) {
		t.Error("Healed(id) = false")
	}
	if d := s.Delta(); d.Len() != 1 || !d.Contains(id) {
		t.Errorf("delta = %v", d.IDs())
	}
	// The object's page became key 0; the neighbouring MT page kept key 1.
	if k, _ := rt.Alloc.Space().PKeyAt(obj); k != 0 {
		t.Errorf("healed page key = %d, want 0", k)
	}
	if k, _ := rt.Alloc.Space().PKeyAt(neighbour); k != rt.Alloc.TrustedKey() {
		t.Errorf("neighbour page key = %d, want trusted key", k)
	}
	// MT region ownership is intact: the healed pointer still frees.
	if err := rt.Alloc.Free(obj); err != nil {
		t.Errorf("free of healed object: %v", err)
	}
	// The event carries the crash report the run would have died with.
	ev := s.Events()
	if len(ev) != 1 || ev[0].Action != "heal" || ev[0].Site != id.String() {
		t.Fatalf("events = %+v", ev)
	}
	if ev[0].Averted == nil || ev[0].Averted.Fault.Code != "SEGV_PKUERR" {
		t.Errorf("averted report = %+v, want PKUERR forensics", ev[0].Averted)
	}
	if got := len(s.Averted()); got != 1 {
		t.Errorf("Averted() len = %d, want 1", got)
	}
}

func TestHealUnresolvableFallsBackToQuarantine(t *testing.T) {
	rt, reg, rec := world(t)
	secret, _ := rt.Alloc.Alloc(8) // never logged with the recorder
	reg.MustLibrary("u", ffi.Untrusted).Define("wild", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		_, e := th.Load64(secret)
		return nil, e
	})
	s := New(Config{Policy: Heal}, Deps{Alloc: rt.Alloc, Recorder: rec})
	_, err := s.Call(rt.NewThread(), "u", "wild")
	var ce *CompartmentError
	if !errors.As(err, &ce) || ce.Outcome != OutcomeUnhealable {
		t.Fatalf("error = %v, want unhealable CompartmentError", err)
	}
	if rt.Alloc.UntrustedEpoch() != 1 {
		t.Error("unhealable failure did not quarantine MU")
	}
	if s.Delta().Len() != 0 {
		t.Error("unhealable failure produced a profile delta")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	rt, reg, rec := world(t)
	secret, _ := rt.Alloc.Alloc(8)
	reg.MustLibrary("u", ffi.Untrusted).Define("always_faults", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		_, e := th.Load64(secret)
		return nil, e
	})
	s := New(Config{Policy: Retry, MaxRetries: 10, Budget: 2}, Deps{Alloc: rt.Alloc, Recorder: rec})
	th := rt.NewThread()
	_, err := s.Call(th, "u", "always_faults")
	var ce *CompartmentError
	if !errors.As(err, &ce) || ce.Outcome != OutcomeBudgetExceeded {
		t.Fatalf("error = %v, want budget_exhausted", err)
	}
	if got := s.BudgetRemaining(); got != 0 {
		t.Errorf("BudgetRemaining = %d, want 0", got)
	}
}

func TestRecoveryMetricsExported(t *testing.T) {
	rt, reg, rec := world(t)
	secret, _ := rt.Alloc.Alloc(8)
	calls := 0
	reg.MustLibrary("u", ffi.Untrusted).Define("once", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		calls++
		if calls == 1 {
			_, e := th.Load64(secret)
			return nil, e
		}
		return nil, nil
	})
	tel := telemetry.NewRegistry()
	s := New(Config{Policy: Retry}, Deps{Alloc: rt.Alloc, Recorder: rec, Telemetry: tel})
	if _, err := s.Call(rt.NewThread(), "u", "once"); err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()
	want := map[string]bool{
		"pkrusafe_recovery_attempts_total": false,
		"pkrusafe_recovery_actions_total":  false,
		"pkrusafe_recovery_outcomes_total": false,
	}
	for _, m := range snap.Metrics {
		if _, ok := want[m.Name]; ok {
			want[m.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s not exported", name)
		}
	}
}
