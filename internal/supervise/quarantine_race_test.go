package supervise

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/mpk"
	"repro/internal/pkalloc"
	"repro/internal/vm"
)

// TestConcurrentShieldDomainQuarantineRace hammers Shield from many
// workers across several domains while the Quarantine policy bumps pool
// epochs underneath them. Run under -race, it proves the two invariants
// per-domain quarantine must keep under hostile concurrency: an
// allocation from one domain's pool never lands outside that pool's
// reservation (a neighbour's scrub must not leak its space into this
// pool's fresh free list), and the global recovery budget never goes
// negative no matter how many recoveries race for it.
func TestConcurrentShieldDomainQuarantineRace(t *testing.T) {
	space := vm.NewSpace()
	alloc, err := pkalloc.New(pkalloc.Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	const nDomains, nWorkers, cycles = 4, 8, 150
	names := make([]string, nDomains)
	regions := make([]*vm.Region, nDomains)
	for i := range names {
		names[i] = fmt.Sprintf("tenant%03d", i)
		r, err := alloc.AddDomainPool(names[i], mpk.Key(8+i))
		if err != nil {
			t.Fatal(err)
		}
		regions[i] = r
	}
	secret, err := alloc.Alloc(8) // MT: an untrusted load faults
	if err != nil {
		t.Fatal(err)
	}
	reg := ffi.NewRegistry()
	rt := ffi.NewRuntime(reg, alloc, nil, ffi.GatesOn)
	lib := reg.MustLibrary("u", ffi.Untrusted)
	lib.Define("boom", func(th *ffi.Thread, _ []uint64) ([]uint64, error) {
		_, e := th.Load64(secret)
		return nil, e
	})
	lib.Define("ok", func(_ *ffi.Thread, a []uint64) ([]uint64, error) {
		return a, nil
	})
	tracer := gatetrace.New(gatetrace.Config{Capacity: 4})
	sup := New(Config{Policy: Quarantine}, Deps{Alloc: alloc})

	errs := make(chan string, nWorkers*cycles)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.NewThread()
			for c := 0; c < cycles; c++ {
				i := (w + c) % nDomains
				tc := tracer.Start(names[i])
				th.SetTraceContext(tc)
				fn := "ok"
				if c%3 == 0 {
					fn = "boom" // every third request takes a pkey fault
				}
				serr := sup.Shield(th, names[i]+".op", func() error {
					_, e := th.Call("u", fn, 1)
					return e
				})
				th.SetTraceContext(nil)
				tc.Finish()
				var ce *CompartmentError
				if serr != nil && !errors.As(serr, &ce) {
					errs <- fmt.Sprintf("Shield returned a non-compartment error: %v", serr)
				}
				// A neighbour's concurrent epoch bump replaces *its* free
				// list; this domain's allocations must stay inside this
				// domain's reservation regardless.
				if addr, aerr := alloc.DomainAlloc(names[i], 64); aerr == nil {
					r := regions[i]
					if addr < r.Base || addr+64 > r.Base+vm.Addr(r.Size) {
						errs <- fmt.Sprintf("alloc for %s landed at %#x, outside its pool [%#x, %#x)",
							names[i], addr, r.Base, r.Base+vm.Addr(r.Size))
					}
				}
				if left := sup.BudgetRemaining(); left < 0 {
					errs <- fmt.Sprintf("recovery budget went negative: %d", left)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	seen := 0
	for e := range errs {
		if seen < 10 {
			t.Error(e)
		}
		seen++
	}
	if seen > 10 {
		t.Errorf("... and %d further violations", seen-10)
	}

	// Epoch bookkeeping must reconcile: each pool's epoch is exactly the
	// number of domain-tier quarantines the supervisor spent on it.
	quarantined := 0
	for _, n := range names {
		ep, ok := alloc.DomainEpoch(n)
		if !ok {
			t.Fatalf("domain pool %s vanished", n)
		}
		if got := sup.DomainQuarantines(n); uint64(got) != ep {
			t.Errorf("%s: epoch %d != %d supervisor quarantines", n, ep, got)
		}
		if ep > 0 {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Error("no domain was ever quarantined; the race exercised nothing")
	}
}
