package repro

import (
	"errors"
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/vm"
)

// TestHeadlineClaims asserts the paper's four major claims (artifact
// appendix A.4.1) end to end on the full stack:
//
//	C1 — intra-process heap isolation from library-level annotations;
//	C2 — the pipeline scales to the full browser workload;
//	C3 — overhead concentrates where compartment transitions do;
//	C4 — the real-world-style exploit is defeated.
func TestHeadlineClaims(t *testing.T) {
	// C1+C2: profile the standard corpus, then run it enforced.
	prof, err := browser.CollectProfile(browser.StandardCorpus)
	if err != nil {
		t.Fatalf("C2 profiling: %v", err)
	}
	b, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := browser.StandardCorpus(b); err != nil {
		t.Fatalf("C2 enforced corpus run: %v", err)
	}
	st := b.Stats()
	if st.UntrustedSites == 0 || st.UntrustedSites*10 >= st.TotalSites {
		t.Errorf("C1: site split %d/%d — expected a small shared fraction",
			st.UntrustedSites, st.TotalSites)
	}
	if st.Transitions == 0 {
		t.Error("C1: no gated transitions recorded")
	}

	// C3: transition counts differ by orders of magnitude between a DOM
	// workload and a compute workload (deterministic proxy for the
	// overhead shape).
	domTrans := measureTransitions(t, `
		var c = byId("content");
		for (var i = 0; i < 50; i++) { setText(c, "x" + i); getText(c); }
		0;`)
	computeTrans := measureTransitions(t, `
		var s = 0;
		for (var i = 0; i < 5000; i++) s += i * i;
		s;`)
	if domTrans < 20*computeTrans {
		t.Errorf("C3: dom transitions (%d) should dwarf compute transitions (%d)",
			domTrans, computeTrans)
	}

	// C4: the CVE-analogue exploit corrupts the secret without
	// protection and dies with it enabled.
	exploit := `
		var a = new IntArray(8);
		var b = new IntArray(8);
		a.setLength(4096);
		var found = -1;
		for (var i = 8; i < 2000; i++) {
			if (a[i] == 0x4a53ce11) { found = i; break; }
		}
		a[found + 3] = 0x168000000000;
		b[0] = 1337;
		b[0];`
	vuln, err := browser.New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vuln.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	if _, err := vuln.ExecScript(exploit); err != nil {
		t.Fatalf("C4 vulnerable run: %v", err)
	}
	if v, _ := vuln.SecretValue(); v != 1337 {
		t.Errorf("C4: vulnerable secret = %d, want corrupted", v)
	}
	prot, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := prot.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	_, err = prot.ExecScript(exploit)
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("C4 protected run = %v, want MPK fault", err)
	}
	if v, _ := prot.SecretValue(); v != 42 {
		t.Errorf("C4: protected secret = %d, want intact", v)
	}
}

func measureTransitions(t *testing.T, script string) uint64 {
	t.Helper()
	const page = `<div id="content">seed</div>`
	prof, err := browser.CollectProfile(func(b *browser.Browser) error {
		if err := b.LoadHTML(page); err != nil {
			return err
		}
		_, err := b.ExecScript(script)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(page); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return b.Stats().Transitions
}
