package repro

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TestHeadlineClaims asserts the paper's four major claims (artifact
// appendix A.4.1) end to end on the full stack:
//
//	C1 — intra-process heap isolation from library-level annotations;
//	C2 — the pipeline scales to the full browser workload;
//	C3 — overhead concentrates where compartment transitions do;
//	C4 — the real-world-style exploit is defeated.
func TestHeadlineClaims(t *testing.T) {
	// C1+C2: profile the standard corpus, then run it enforced.
	prof, err := browser.CollectProfile(browser.StandardCorpus)
	if err != nil {
		t.Fatalf("C2 profiling: %v", err)
	}
	b, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := browser.StandardCorpus(b); err != nil {
		t.Fatalf("C2 enforced corpus run: %v", err)
	}
	st := b.Stats()
	if st.UntrustedSites == 0 || st.UntrustedSites*10 >= st.TotalSites {
		t.Errorf("C1: site split %d/%d — expected a small shared fraction",
			st.UntrustedSites, st.TotalSites)
	}
	if st.Transitions == 0 {
		t.Error("C1: no gated transitions recorded")
	}

	// C3: transition counts differ by orders of magnitude between a DOM
	// workload and a compute workload (deterministic proxy for the
	// overhead shape).
	domTrans := measureTransitions(t, `
		var c = byId("content");
		for (var i = 0; i < 50; i++) { setText(c, "x" + i); getText(c); }
		0;`)
	computeTrans := measureTransitions(t, `
		var s = 0;
		for (var i = 0; i < 5000; i++) s += i * i;
		s;`)
	if domTrans < 20*computeTrans {
		t.Errorf("C3: dom transitions (%d) should dwarf compute transitions (%d)",
			domTrans, computeTrans)
	}

	// C4: the CVE-analogue exploit corrupts the secret without
	// protection and dies with it enabled.
	exploit := `
		var a = new IntArray(8);
		var b = new IntArray(8);
		a.setLength(4096);
		var found = -1;
		for (var i = 8; i < 2000; i++) {
			if (a[i] == 0x4a53ce11) { found = i; break; }
		}
		a[found + 3] = 0x168000000000;
		b[0] = 1337;
		b[0];`
	vuln, err := browser.New(core.Base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vuln.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	if _, err := vuln.ExecScript(exploit); err != nil {
		t.Fatalf("C4 vulnerable run: %v", err)
	}
	if v, _ := vuln.SecretValue(); v != 1337 {
		t.Errorf("C4: vulnerable secret = %d, want corrupted", v)
	}
	prot, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := prot.PlantSecret(42); err != nil {
		t.Fatal(err)
	}
	_, err = prot.ExecScript(exploit)
	var fault *vm.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("C4 protected run = %v, want MPK fault", err)
	}
	if v, _ := prot.SecretValue(); v != 42 {
		t.Errorf("C4: protected secret = %d, want intact", v)
	}
}

func measureTransitions(t *testing.T, script string) uint64 {
	t.Helper()
	const page = `<div id="content">seed</div>`
	prof, err := browser.CollectProfile(func(b *browser.Browser) error {
		if err := b.LoadHTML(page); err != nil {
			return err
		}
		_, err := b.ExecScript(script)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := browser.New(core.MPK, prof)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadHTML(page); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return b.Stats().Transitions
}

// TestClosedProfilingLoop drives the continuous-profiling plane end to
// end, in process (docs/profiling.md): a supervised MPK run over an empty
// profile generation heals the sites the workload actually shares; the
// heal delta commits as a candidate generation; a staged rollout replays
// the workload split across a control browser (old generation, still
// faulting) and a shadow browser (candidate, clean); the non-regressing
// shadow arm promotes the candidate; and the whole sequence is visible
// through /profile, /profile/diff, /profile/shadow, /metrics and /trace.
func TestClosedProfilingLoop(t *testing.T) {
	const html = `<body><div id="x">seed</div></body>`
	const script = `setText(byId("x"), "closed-loop"); 1;`

	store := profstore.New()
	ring := trace.NewRing(512)
	reg := telemetry.NewRegistry()
	store.SetTrace(ring)
	store.SetTelemetry(reg)

	heal := browser.Options{
		ScriptOutput: io.Discard,
		Trace:        ring,
		Telemetry:    reg,
		Crossings:    true,
		Supervision:  supervise.Config{Policy: supervise.Heal},
	}
	serving, err := browser.New(core.MPK, store.Active().Sites, heal)
	if err != nil {
		t.Fatal(err)
	}
	if err := serving.LoadHTML(html); err != nil {
		t.Fatal(err)
	}
	if _, err := serving.ExecScript(script); err != nil {
		t.Fatalf("healing run: %v", err)
	}

	cs := serving.Prog.Crossings()
	if cs.Sampled() == 0 {
		t.Fatal("crossing sampler observed nothing")
	}
	cs.FeedStore(store)
	delta := serving.Prog.Supervisor().Delta()
	if delta.Len() == 0 {
		t.Fatal("healing run produced no delta; nothing to commit")
	}
	cand := store.Commit(delta, "heal")
	if store.ActiveSeq() != 0 {
		t.Fatalf("commit must not activate (active %d)", store.ActiveSeq())
	}

	// Staged rollout: fresh per-arm browsers so control genuinely runs
	// the pre-heal generation.
	rollout := profstore.NewRollout(store, 0.5, reg)
	rollout.SetCandidate(cand.Seq)
	newArm := func(p *profile.Profile) *browser.Browser {
		ab, err := browser.New(core.MPK, p, heal)
		if err != nil {
			t.Fatal(err)
		}
		if err := ab.LoadHTML(html); err != nil {
			t.Fatal(err)
		}
		return ab
	}
	arms := map[string]*browser.Browser{
		profstore.ArmControl: newArm(store.Active().Sites),
		profstore.ArmShadow:  newArm(cand.Sites),
	}
	for i := 0; i < 4; i++ {
		arm := rollout.Assign()
		ab := arms[arm]
		before := len(ab.Prog.Supervisor().Events())
		_, err := ab.ExecScript(script)
		fault := err != nil || len(ab.Prog.Supervisor().Events()) > before
		rollout.Record(arm, fault)
	}
	dec, err := rollout.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Promote {
		t.Fatalf("candidate not promoted: %+v", dec)
	}
	if dec.Control.Faults == 0 {
		t.Fatalf("control arm never faulted — the comparison proved nothing: %+v", dec)
	}
	if dec.Shadow.Faults != 0 {
		t.Fatalf("shadow arm faulted under the candidate: %+v", dec)
	}
	if store.ActiveSeq() != cand.Seq {
		t.Fatalf("store active = %d, want promoted %d", store.ActiveSeq(), cand.Seq)
	}

	// The promoted state is observable end to end.
	srv, err := obs.ListenAndServe("127.0.0.1:0", obs.ServerConfig{
		Registry: reg, Ring: ring, Profiles: store, Rollout: rollout})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	fetch := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	var view struct {
		Active int    `json:"active"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal([]byte(fetch("/profile")), &view); err != nil {
		t.Fatal(err)
	}
	if view.Active != cand.Seq || view.Source != "heal" {
		t.Errorf("/profile serves %+v, want promoted generation %d", view, cand.Seq)
	}

	var diff struct {
		Added []string `json:"added"`
	}
	if err := json.Unmarshal([]byte(fetch("/profile/diff")), &diff); err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) == 0 {
		t.Error("/profile/diff shows no added sites for the healed generation")
	}

	if body := fetch("/profile/shadow"); !strings.Contains(body, `"state": "promoted"`) {
		t.Errorf("/profile/shadow = %s", body)
	}
	if body := fetch("/metrics"); !strings.Contains(body, "pkrusafe_profile_generation 1") {
		t.Error("/metrics missing promoted generation gauge")
	}
	traceBody := fetch("/trace")
	for _, want := range []string{"crossing", "profile-swap"} {
		if !strings.Contains(traceBody, want) {
			t.Errorf("/trace missing %q events", want)
		}
	}
}
