package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one command into a test temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCLIPipeline drives the shipped pkrusafe binary through the full E1
// flow on the example program: profile, enforced run, crash without the
// profile, static analysis, and the -trace crash dump.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	dir := t.TempDir()
	prof := filepath.Join(dir, "q.prof")
	src := "examples/pkir/quickstart.pkir"

	// Stage: profiling run writes the profile.
	out, err := exec.Command(pkrusafe, "profile", src, "-o", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("profile: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1337") || !strings.Contains(string(out), "1 shared allocation sites") {
		t.Errorf("profile output:\n%s", out)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatal(err)
	}

	// Stage: enforced run with the profile succeeds.
	out, err = exec.Command(pkrusafe, "run", src, "-profile", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1337") || !strings.Contains(string(out), "mpk run returned") {
		t.Errorf("run output:\n%s", out)
	}

	// Stage: enforced run without the profile crashes, and -trace dumps
	// the gate context.
	out, err = exec.Command(pkrusafe, "run", src, "-trace", "8").CombinedOutput()
	if err == nil {
		t.Fatalf("unprofiled run should exit nonzero:\n%s", out)
	}
	for _, want := range []string{"program crashed", "SIGSEGV", "pkey=1", "gate-enter"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("crash output missing %q:\n%s", want, out)
		}
	}

	// Stage: static analysis produces an equivalent profile.
	sprof := filepath.Join(dir, "s.prof")
	out, err = exec.Command(pkrusafe, "analyze", src, "-o", sprof).CombinedOutput()
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 of 1 sites may escape") {
		t.Errorf("analyze output:\n%s", out)
	}
	out, err = exec.Command(pkrusafe, "run", src, "-profile", sprof).CombinedOutput()
	if err != nil {
		t.Fatalf("run with static profile: %v\n%s", err, out)
	}

	// Stage: build prints the instrumented IR with the rewrite visible.
	out, err = exec.Command(pkrusafe, "build", src, "-profile", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ualloc 8") || !strings.Contains(string(out), "site=main@0.0") {
		t.Errorf("instrumented IR missing rewrite:\n%s", out)
	}
}

// TestCLIExploit runs the E3 binary end to end and checks both verdicts.
func TestCLIExploit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	exploit := buildTool(t, "pkru-exploit")
	out, err := exec.Command(exploit).CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-exploit: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"CORRUPTED — attack succeeded",
		"MPK violation",
		"INTACT — attack blocked",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exploit output missing %q:\n%s", want, text)
		}
	}
}

// TestCLIProfileTools exercises pkru-profile show/merge/diff.
func TestCLIProfileTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	profTool := buildTool(t, "pkru-profile")
	dir := t.TempDir()
	dyn := filepath.Join(dir, "d.prof")
	static := filepath.Join(dir, "s.prof")
	merged := filepath.Join(dir, "m.prof")

	if out, err := exec.Command(pkrusafe, "profile", "examples/pkir/deadpath.pkir", "-o", dyn).CombinedOutput(); err != nil {
		t.Fatalf("profile: %v\n%s", err, out)
	}
	if out, err := exec.Command(pkrusafe, "analyze", "examples/pkir/deadpath.pkir", "-o", static).CombinedOutput(); err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	// The dead-path program: dynamic sees nothing, static sees one site.
	out, err := exec.Command(profTool, "diff", static, dyn).CombinedOutput()
	if err == nil {
		t.Fatalf("diff with missing sites should exit nonzero:\n%s", out)
	}
	if !strings.Contains(string(out), "main@0.0") {
		t.Errorf("diff output:\n%s", out)
	}
	if out, err := exec.Command(profTool, "merge", static, dyn, "-o", merged).CombinedOutput(); err != nil {
		t.Fatalf("merge: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "1 shared sites") {
		t.Errorf("merge output:\n%s", out)
	}
	out, err = exec.Command(profTool, "show", merged).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "main@0.0") {
		t.Errorf("show = %v:\n%s", err, out)
	}
	// Subset direction exits zero.
	if out, err := exec.Command(profTool, "diff", dyn, merged).CombinedOutput(); err != nil {
		t.Errorf("subset diff should pass: %v\n%s", err, out)
	}
}

// TestCLIServo runs the browser simulator binary end to end in its
// self-profiling mpk mode.
func TestCLIServo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	servo := buildTool(t, "pkru-servo")
	out, err := exec.Command(servo, "-config", "mpk").CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-servo: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"script result: 7", "config=mpk", "shared-sites="} {
		if !strings.Contains(text, want) {
			t.Errorf("servo output missing %q:\n%s", want, text)
		}
	}
	// Base config runs too, without gates.
	out, err = exec.Command(servo, "-config", "base").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "transitions=0") {
		t.Errorf("base servo: %v\n%s", err, out)
	}
}
