package repro

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one command into a test temp dir and returns its path.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// TestCLIPipeline drives the shipped pkrusafe binary through the full E1
// flow on the example program: profile, enforced run, crash without the
// profile, static analysis, and the -trace crash dump.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	dir := t.TempDir()
	prof := filepath.Join(dir, "q.prof")
	src := "examples/pkir/quickstart.pkir"

	// Stage: profiling run writes the profile.
	out, err := exec.Command(pkrusafe, "profile", src, "-o", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("profile: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1337") || !strings.Contains(string(out), "1 shared allocation sites") {
		t.Errorf("profile output:\n%s", out)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatal(err)
	}

	// Stage: enforced run with the profile succeeds.
	out, err = exec.Command(pkrusafe, "run", src, "-profile", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1337") || !strings.Contains(string(out), "mpk run returned") {
		t.Errorf("run output:\n%s", out)
	}

	// Stage: enforced run without the profile crashes, and -trace dumps
	// the gate context.
	out, err = exec.Command(pkrusafe, "run", src, "-trace", "8").CombinedOutput()
	if err == nil {
		t.Fatalf("unprofiled run should exit nonzero:\n%s", out)
	}
	for _, want := range []string{"program crashed", "SIGSEGV", "pkey=1", "gate-enter"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("crash output missing %q:\n%s", want, out)
		}
	}

	// Stage: static analysis produces an equivalent profile.
	sprof := filepath.Join(dir, "s.prof")
	out, err = exec.Command(pkrusafe, "analyze", src, "-o", sprof).CombinedOutput()
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "1 of 1 sites may escape") {
		t.Errorf("analyze output:\n%s", out)
	}
	out, err = exec.Command(pkrusafe, "run", src, "-profile", sprof).CombinedOutput()
	if err != nil {
		t.Fatalf("run with static profile: %v\n%s", err, out)
	}

	// Stage: build prints the instrumented IR with the rewrite visible.
	out, err = exec.Command(pkrusafe, "build", src, "-profile", prof).CombinedOutput()
	if err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ualloc 8") || !strings.Contains(string(out), "site=main@0.0") {
		t.Errorf("instrumented IR missing rewrite:\n%s", out)
	}
}

// TestCLIExploit runs the E3 binary end to end and checks both verdicts.
func TestCLIExploit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	exploit := buildTool(t, "pkru-exploit")
	out, err := exec.Command(exploit).CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-exploit: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"CORRUPTED — attack succeeded",
		"MPK violation",
		"INTACT — attack blocked",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exploit output missing %q:\n%s", want, text)
		}
	}
}

// TestCLIExploitGolden pins the E3 binary's exact output for a fixed
// secret. The whole experiment is deterministic — fixed pool bases, fixed
// secret address, seedless exploit script — so the full transcript
// including the PKUERR decode must be byte-identical from run to run; any
// drift in the fault address, faulting key or decoded AD/WD bits is a
// semantics change, not noise.
func TestCLIExploitGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	const golden = `=== E3: exploit vs unprotected browser (servo-exploitable) ===
secret planted at 0x168000000000 = 42
running exploit script in the JavaScript engine...
exploit completed without a fault
secret at exit = 1337 (CORRUPTED — attack succeeded)

=== E3: exploit vs PKRU-Safe browser (servo-pkru) ===
secret planted at 0x168000000000 = 42
running exploit script in the JavaScript engine...
MPK violation: SIGSEGV code=100 addr=0x168000000000 access=write pkey=1
PKUERR decode: pkey1 rights=-- AD=true WD=true pkru=0x0000000c
process terminated by PKRU-Safe (simulated crash)
secret at exit = 42 (INTACT — attack blocked)
`
	exploit := buildTool(t, "pkru-exploit")
	for run := 0; run < 2; run++ {
		out, err := exec.Command(exploit, "-secret", "42").CombinedOutput()
		if err != nil {
			t.Fatalf("run %d: %v\n%s", run, err, out)
		}
		if string(out) != golden {
			t.Errorf("run %d output differs from golden:\n--- got ---\n%s--- want ---\n%s", run, out, golden)
		}
	}
}

// TestCLIAttackVerdictsGolden pins the Garmr attack corpus's verdict
// transcript byte for byte: the roster order, every class/defense pair,
// and the red/green drill outcomes are all deterministic, so any drift —
// a defense that stops killing its attack with the expected fault, an
// attack that loses its teeth with the defense off, a renamed class — is
// a semantics change, not noise.
func TestCLIAttackVerdictsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	const golden = `ATTACK class=rogue-wrpkru scenario=rogue-wrpkru defense=wrpkru-guard drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=rogue-wrpkru scenario=rogue-wrpkru defense=wrpkru-guard drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=rogue-wrpkru scenario=exit-exfil defense=gate-exit-audit drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=rogue-wrpkru scenario=exit-exfil defense=gate-exit-audit drill=green defense-mode=on breached=no fault=gate-tampered verdict=PASS
ATTACK class=sigframe-tamper scenario=sigframe-tamper defense=sigframe-sanitizer drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=sigframe-tamper scenario=sigframe-tamper defense=sigframe-sanitizer drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=stale-pkru scenario=migration-stale-pkru defense=migration-revalidation drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=stale-pkru scenario=migration-stale-pkru defense=migration-revalidation drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=retag-race scenario=evict-retag-race defense=atomic-evict-retag drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=retag-race scenario=evict-retag-race defense=atomic-evict-retag drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=retag-race scenario=slot-reuse defense=free-park-revoke drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=retag-race scenario=slot-reuse defense=free-park-revoke drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=gate-bypass scenario=gate-exit-skip defense=gate-instrumentation drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=gate-bypass scenario=gate-exit-skip defense=gate-instrumentation drill=green defense-mode=on breached=no fault=pkuerr verdict=PASS
ATTACK class=confused-deputy scenario=confused-deputy defense=call-filter drill=red defense-mode=off breached=yes fault=none verdict=PASS
ATTACK class=confused-deputy scenario=confused-deputy defense=call-filter drill=green defense-mode=on breached=no fault=call-filtered verdict=PASS
`
	exploit := buildTool(t, "pkru-exploit")
	for run := 0; run < 2; run++ {
		out, err := exec.Command(exploit, "-attacks").CombinedOutput()
		if err != nil {
			t.Fatalf("run %d: %v\n%s", run, err, out)
		}
		if string(out) != golden {
			t.Errorf("run %d verdicts differ from golden:\n--- got ---\n%s--- want ---\n%s", run, out, golden)
		}
	}
}

// TestCLIAttackExitContract pins the -attacks exit-status contract: 0 when
// every drill passes, 2 for an unknown class (with the known classes
// listed), and a -class filter that selects exactly that class's drills.
// (Exit 1 — any drill failing — is covered at the package level by the
// attack harness's sabotage self-tests; it cannot be forced from the CLI
// without breaking a defense.)
func TestCLIAttackExitContract(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	exploit := buildTool(t, "pkru-exploit")

	// All classes pass: exit 0.
	if out, err := exec.Command(exploit, "-attacks").CombinedOutput(); err != nil {
		t.Fatalf("-attacks should exit 0: %v\n%s", err, out)
	}

	// A class filter runs only that class's drills.
	out, err := exec.Command(exploit, "-attacks", "-class", "retag-race").CombinedOutput()
	if err != nil {
		t.Fatalf("-class retag-race: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("retag-race filter printed %d lines, want 4 (2 scenarios x red+green):\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "ATTACK class=retag-race ") {
			t.Errorf("filtered line leaked another class: %q", l)
		}
	}

	// Unknown class: exit 2, listing the known classes.
	out, err = exec.Command(exploit, "-attacks", "-class", "nosuch").CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("unknown class: err=%v, want exit status 2\n%s", err, out)
	}
	if !strings.Contains(string(out), "known classes:") || !strings.Contains(string(out), "gate-bypass") {
		t.Errorf("unknown-class output should list the roster:\n%s", out)
	}

	// -class without -attacks is a usage error (exit 2).
	out, err = exec.Command(exploit, "-class", "retag-race").CombinedOutput()
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("-class without -attacks: err=%v, want exit status 2\n%s", err, out)
	}
}

// TestCLIConformAttacks runs the attack corpus through the shipped
// conformance binary — the CI entry point that must exit non-zero when
// any drill fails.
func TestCLIConformAttacks(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	conform := buildTool(t, "pkru-conform")
	out, err := exec.Command(conform, "-attacks").CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-conform -attacks: %v\n%s", err, out)
	}
	text := string(out)
	if got := strings.Count(text, "ATTACK class="); got != 16 {
		t.Errorf("verdict lines = %d, want 16:\n%s", got, text)
	}
	if !strings.Contains(text, "every attack has teeth, every defense holds") {
		t.Errorf("summary line missing:\n%s", text)
	}
}

// TestCLIProfileTools exercises pkru-profile show/merge/diff.
func TestCLIProfileTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	profTool := buildTool(t, "pkru-profile")
	dir := t.TempDir()
	dyn := filepath.Join(dir, "d.prof")
	static := filepath.Join(dir, "s.prof")
	merged := filepath.Join(dir, "m.prof")

	if out, err := exec.Command(pkrusafe, "profile", "examples/pkir/deadpath.pkir", "-o", dyn).CombinedOutput(); err != nil {
		t.Fatalf("profile: %v\n%s", err, out)
	}
	if out, err := exec.Command(pkrusafe, "analyze", "examples/pkir/deadpath.pkir", "-o", static).CombinedOutput(); err != nil {
		t.Fatalf("analyze: %v\n%s", err, out)
	}
	// The dead-path program: dynamic sees nothing, static sees one site.
	out, err := exec.Command(profTool, "diff", static, dyn).CombinedOutput()
	if err == nil {
		t.Fatalf("diff with missing sites should exit nonzero:\n%s", out)
	}
	if !strings.Contains(string(out), "main@0.0") {
		t.Errorf("diff output:\n%s", out)
	}
	if out, err := exec.Command(profTool, "merge", static, dyn, "-o", merged).CombinedOutput(); err != nil {
		t.Fatalf("merge: %v\n%s", err, out)
	} else if !strings.Contains(string(out), "1 shared sites") {
		t.Errorf("merge output:\n%s", out)
	}
	out, err = exec.Command(profTool, "show", merged).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "main@0.0") {
		t.Errorf("show = %v:\n%s", err, out)
	}
	// Subset direction exits zero.
	if out, err := exec.Command(profTool, "diff", dyn, merged).CombinedOutput(); err != nil {
		t.Errorf("subset diff should pass: %v\n%s", err, out)
	}
}

// TestCLICrashReport drives the black-box path: an unprofiled mpk run of
// the quickstart program dies on a pkey violation, and the binary must
// leave behind both the human-readable report on stderr and, with
// -crash-json, the schema-versioned JSON with every forensic field filled.
func TestCLICrashReport(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	crash := filepath.Join(t.TempDir(), "crash.json")

	out, err := exec.Command(pkrusafe, "run", "examples/pkir/quickstart.pkir", "-crash-json", crash).CombinedOutput()
	if err == nil {
		t.Fatalf("unprofiled run should exit nonzero:\n%s", out)
	}
	for _, want := range []string{
		"program crashed",
		"PKRU-safe crash report",
		"SEGV_PKUERR",
		"<- faulting key",
		"site=main@0.0",
		"compartment: untrusted (gate depth 1)",
		"pages around fault:",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("crash text missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(crash)
	if err != nil {
		t.Fatalf("crash JSON not written: %v", err)
	}
	var rep struct {
		Schema int `json:"schema"`
		Fault  struct {
			Code string `json:"code"`
			PKey uint8  `json:"pkey"`
		} `json:"fault"`
		PKRU struct {
			Keys []struct {
				Key uint8 `json:"key"`
				AD  bool  `json:"ad"`
				WD  bool  `json:"wd"`
			} `json:"keys"`
		} `json:"pkru"`
		Pages []struct {
			Faulting bool  `json:"faulting"`
			PKey     uint8 `json:"pkey"`
		} `json:"pages"`
		Provenance struct {
			Found bool   `json:"found"`
			Site  string `json:"site"`
		} `json:"provenance"`
		Trace struct {
			Events []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("crash JSON: %v\n%s", err, data)
	}
	if rep.Schema != 1 {
		t.Errorf("schema = %d, want 1", rep.Schema)
	}
	if rep.Fault.Code != "SEGV_PKUERR" || rep.Fault.PKey != 1 {
		t.Errorf("fault = %+v, want SEGV_PKUERR on pkey 1", rep.Fault)
	}
	if len(rep.PKRU.Keys) != 16 {
		t.Fatalf("decoded %d pkru keys, want 16", len(rep.PKRU.Keys))
	}
	if k := rep.PKRU.Keys[1]; !k.AD || !k.WD {
		t.Errorf("pkey 1 rights = %+v, want ad and wd set", k)
	}
	var sawFaultingPage bool
	for _, p := range rep.Pages {
		if p.Faulting {
			sawFaultingPage = true
			if p.PKey != 1 {
				t.Errorf("faulting page pkey = %d, want 1", p.PKey)
			}
		}
	}
	if !sawFaultingPage {
		t.Error("no faulting page in JSON page map")
	}
	if !rep.Provenance.Found || rep.Provenance.Site != "main@0.0" {
		t.Errorf("provenance = %+v, want site main@0.0", rep.Provenance)
	}
	if len(rep.Trace.Events) == 0 {
		t.Error("trace tail empty in JSON report")
	}
}

// TestCLIListen verifies the live observability plane against a running
// workload: a spinning program keeps the interpreter busy while the test
// hits every endpoint on the address the binary announces, then the
// process is killed.
func TestCLIListen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	spin := filepath.Join(t.TempDir(), "spin.pkir")
	const spinSrc = `module spin

export func main() {
entry:
  jmp loop
loop:
  jmp loop
}
`
	if err := os.WriteFile(spin, []byte(spinSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(pkrusafe, "run", spin, "-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The binary announces the bound address before the workload starts.
	var base string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "observability server on "); i >= 0 {
			base = strings.TrimSpace(line[i+len("observability server on "):])
			break
		}
	}
	if base == "" {
		t.Fatalf("server address never announced (scanner err %v)", sc.Err())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	for path, want := range map[string]string{
		"/healthz":             "ok",
		"/metrics":             "# TYPE",
		"/snapshot.json":       `"schema"`,
		"/trace":               "",
		"/debug/pprof/cmdline": "pkrusafe",
	} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(string(body[:n]), want) {
			t.Errorf("GET %s body missing %q:\n%s", path, want, body[:n])
		}
	}
}

// TestCLIServo runs the browser simulator binary end to end in its
// self-profiling mpk mode.
func TestCLIServo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	servo := buildTool(t, "pkru-servo")
	out, err := exec.Command(servo, "-config", "mpk").CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-servo: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"script result: 7", "config=mpk", "shared-sites="} {
		if !strings.Contains(text, want) {
			t.Errorf("servo output missing %q:\n%s", want, text)
		}
	}
	// Base config runs too, without gates.
	out, err = exec.Command(servo, "-config", "base").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "transitions=0") {
		t.Errorf("base servo: %v\n%s", err, out)
	}
}

// TestCLIRecoverHeal drives the supervisor's headline contrast on the
// quickstart program run without a profile: the default policy dies on
// the PKUERR while -recover=heal completes, prints the exact "crash
// averted" report (the whole run is deterministic — fixed pool bases,
// fixed site IDs — so the report is golden), persists the healed-site
// profile delta, and exports the recovery counters in -metrics-json.
func TestCLIRecoverHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	pkrusafe := buildTool(t, "pkrusafe")
	src := "examples/pkir/quickstart.pkir"
	dir := t.TempDir()

	// Fail-stop baseline: same program, same missing profile, exit 1.
	if out, err := exec.Command(pkrusafe, "run", src, "-recover", "abort").CombinedOutput(); err == nil {
		t.Fatalf("-recover=abort should exit nonzero:\n%s", out)
	}

	healed := filepath.Join(dir, "healed.prof")
	metrics := filepath.Join(dir, "metrics.json")
	cmd := exec.Command(pkrusafe, "run", src, "-recover", "heal", "-heal-out", healed, "-metrics-json", metrics)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("-recover=heal should exit zero: %v\n%s", err, stderr.String())
	}
	if got := stdout.String(); got != "1337\n" {
		t.Errorf("healed run stdout = %q, want \"1337\\n\"", got)
	}
	const goldenStderr = `pkrusafe: crash averted: 1 recovery action(s) under policy heal
pkrusafe:   #1 heal ir/untrusted.clib_write site=main@0.0
pkrusafe:       would have died: write SEGV_PKUERR at 0x200000000000 (pkey 1)
pkrusafe: healed 1 allocation site(s): main@0.0
pkrusafe: crossings: 2 sampled, 1 allocation site(s) attributed: main@0.0
pkrusafe: mpk run returned [1337] (2 transitions)
`
	if got := stderr.String(); got != goldenStderr {
		t.Errorf("crash-averted report differs from golden:\n--- got ---\n%s--- want ---\n%s", got, goldenStderr)
	}

	// The persisted delta round-trips: with it applied, the enforced run
	// needs no recovery at all.
	out, err := exec.Command(pkrusafe, "run", src, "-profile", healed, "-recover", "abort").CombinedOutput()
	if err != nil {
		t.Fatalf("run with healed profile: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "crash averted") {
		t.Errorf("healed-profile run should not need recovery:\n%s", out)
	}

	// Recovery outcomes are visible in the metrics export.
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics JSON not written: %v", err)
	}
	var snap struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				LabelValues []string `json:"label_values"`
				Value       float64  `json:"value"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, data)
	}
	got := map[string]float64{}
	for _, m := range snap.Metrics {
		for _, s := range m.Series {
			key := m.Name
			if len(s.LabelValues) > 0 {
				key += "{" + strings.Join(s.LabelValues, ",") + "}"
			}
			got[key] = s.Value
		}
	}
	for key, want := range map[string]float64{
		"pkrusafe_recovery_attempts_total":            2,
		"pkrusafe_recovery_outcomes_total{recovered}": 1,
		"pkrusafe_recovery_actions_total{heal}":       1,
		"pkrusafe_recovery_healed_sites_total":        1,
	} {
		if got[key] != want {
			t.Errorf("metric %s = %v, want %v", key, got[key], want)
		}
	}
}

// TestCLIServoRecover checks request-level isolation in the browser
// binary: with a deliberately empty profile every request's script dies
// in the engine, and under -recover=quarantine each is dropped while the
// service survives (exit 0), whereas -recover=heal migrates the missed
// sites so later requests simply succeed.
func TestCLIServoRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	servo := buildTool(t, "pkru-servo")
	empty := filepath.Join(t.TempDir(), "empty.prof")
	if err := os.WriteFile(empty, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(servo, "-config", "mpk", "-profile", empty, "-requests", "2",
		"-recover", "quarantine").CombinedOutput()
	if err != nil {
		t.Fatalf("quarantine run should survive dropped requests: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"request 1/2 dropped (quarantined)",
		"request 2/2 dropped (quarantined)",
		"crash averted: served 0/2 request(s), dropped 2 under policy quarantine",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("quarantine output missing %q:\n%s", want, text)
		}
	}

	out, err = exec.Command(servo, "-config", "mpk", "-profile", empty, "-requests", "2",
		"-recover", "heal").CombinedOutput()
	if err != nil {
		t.Fatalf("heal run: %v\n%s", err, out)
	}
	if got := strings.Count(string(out), "script result:"); got != 2 {
		t.Errorf("healed servo served %d/2 requests:\n%s", got, out)
	}
}

// TestCLIServoResilienceGolden pins the containment verdict byte for
// byte. The hostile run is fully deterministic — one worker per domain,
// round-robin tenant selection, churn off, a probe backoff longer than
// the run so the tripped breaker never half-opens — so the hostile
// tenant takes exactly 12 requests: 3 fault (tripping the breaker at
// the default threshold), 9 shed at admission, 3 quarantine epochs on
// its pool alone, while the 7 healthy tenants complete 84/84. Any drift
// in these numbers is a containment-semantics change, not noise.
func TestCLIServoResilienceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	const golden = `resilience: hostile=tenant003 requests=12 faulted=3 shed=9 breaker=open trips=1
resilience: hostile-epochs=3 healthy-pools-bumped=0
resilience: healthy tenants=7 ok=84 dropped=0 leaks=0 breaches=0
resilience: verdict CONTAINED
`
	servo := buildTool(t, "pkru-servo")
	for run := 0; run < 2; run++ {
		out, err := exec.Command(servo, "-domains=8", "-domain-workers=1",
			"-domain-cycles=96", "-hostile=tenant003", "-churn=false",
			"-breaker-probe-after=1h", "-recover=quarantine").CombinedOutput()
		if err != nil {
			t.Fatalf("run %d: %v\n%s", run, err, out)
		}
		var verdict strings.Builder
		for _, line := range strings.SplitAfter(string(out), "\n") {
			if strings.HasPrefix(line, "resilience:") {
				verdict.WriteString(line)
			}
		}
		if verdict.String() != golden {
			t.Errorf("run %d verdict differs from golden:\n--- got ---\n%s--- want ---\n%s\n--- full output ---\n%s",
				run, verdict.String(), golden, out)
		}
	}
}

// TestCLIServoHostileSheds checks the admission-control contract from
// the outside: a shed hostile request must be refused before any gate
// opens (the shed counter moves, the hostile tenant's ok-count does
// not), and an open breaker must not bleed into the exit status as long
// as containment holds.
func TestCLIServoHostileSheds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	servo := buildTool(t, "pkru-servo")
	out, err := exec.Command(servo, "-domains=8", "-domain-workers=1",
		"-domain-cycles=96", "-hostile=tenant003", "-churn=false",
		"-breaker-probe-after=1h", "-recover=quarantine").CombinedOutput()
	if err != nil {
		t.Fatalf("contained hostile run must exit zero: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "shed=9") || !strings.Contains(text, "breaker=open") {
		t.Errorf("hostile run did not shed behind an open breaker:\n%s", text)
	}
	// -hostile without -domains is a usage error.
	out, err = exec.Command(servo, "-hostile=tenant003").CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("-hostile without -domains: err=%v, want exit status 2\n%s", err, out)
	}
}

// TestCLIConformSupervised runs the supervised-gate drill through the
// shipped conformance binary.
func TestCLIConformSupervised(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	conform := buildTool(t, "pkru-conform")
	out, err := exec.Command(conform, "-supervised").CombinedOutput()
	if err != nil {
		t.Fatalf("pkru-conform -supervised: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "supervised-gate drill") {
		t.Errorf("drill output:\n%s", out)
	}
}

// TestCLIServoProfileRollout drives the continuous-profiling closed loop
// through the shipped binary: a fresh store bootstraps at the empty seed
// generation, the healed delta commits as a candidate, the staged rollout
// promotes it, and the promoted state lands in the store file, the
// metrics snapshot (pkrusafe_profile_generation gauge) and the trace dump
// (crossing + profile-swap events). A second run over the saved store
// must find nothing left to heal.
func TestCLIServoProfileRollout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	servo := buildTool(t, "pkru-servo")
	dir := t.TempDir()
	store := filepath.Join(dir, "store.json")
	metrics := filepath.Join(dir, "metrics.json")
	traceOut := filepath.Join(dir, "trace.txt")

	out, err := exec.Command(servo, "-config", "mpk", "-profile-store", store,
		"-shadow-frac", "0.5", "-requests", "4", "-recover", "heal",
		"-metrics-json", metrics, "-trace-out", traceOut).CombinedOutput()
	if err != nil {
		t.Fatalf("rollout run: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"applying generation 0 (0 site(s))",
		"crossings:",
		"committed candidate generation 1 (source heal,",
		"candidate 1 promoted",
		"(control 1/2 faulted, shadow 0/2)",
		"profile store saved to",
		"(2 generation(s), active 1)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rollout output missing %q:\n%s", want, text)
		}
	}

	// The persisted store serves generation 1 as active.
	data, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	var saved struct {
		Schema      int `json:"schema"`
		Active      int `json:"active"`
		Generations []struct {
			Source string `json:"source"`
		} `json:"generations"`
	}
	if err := json.Unmarshal(data, &saved); err != nil {
		t.Fatal(err)
	}
	if saved.Schema != 1 || saved.Active != 1 || len(saved.Generations) != 2 || saved.Generations[1].Source != "heal" {
		t.Errorf("saved store = %+v", saved)
	}

	// The generation gauge exported the promoted sequence, and the shadow
	// arms were accounted.
	mdata, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name   string `json:"name"`
			Series []struct {
				Value       float64  `json:"value"`
				LabelValues []string `json:"label_values"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, m := range snap.Metrics {
		switch m.Name {
		case "pkrusafe_profile_generation":
			found[m.Name] = true
			if len(m.Series) != 1 || m.Series[0].Value != 1 {
				t.Errorf("generation gauge = %+v, want value 1", m.Series)
			}
		case "pkrusafe_profile_shadow_requests_total":
			found[m.Name] = true
			for _, s := range m.Series {
				if s.Value != 2 {
					t.Errorf("shadow request series = %+v, want 2 per arm", m.Series)
				}
			}
		case "pkrusafe_profile_crossings_total", "pkrusafe_profile_samples_total":
			found[m.Name] = true
		}
	}
	for _, name := range []string{
		"pkrusafe_profile_generation",
		"pkrusafe_profile_shadow_requests_total",
		"pkrusafe_profile_crossings_total",
		"pkrusafe_profile_samples_total",
	} {
		if !found[name] {
			t.Errorf("metrics snapshot missing %s", name)
		}
	}

	// The trace dump shows the loop: attributed crossings, then the swap.
	tdata, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crossing", "profile-swap generation=1 prev=0 source=heal"} {
		if !strings.Contains(string(tdata), want) {
			t.Errorf("trace dump missing %q:\n%s", want, tdata)
		}
	}

	// Second run over the promoted store: nothing to heal, no new
	// generation, active stands.
	out, err = exec.Command(servo, "-config", "mpk", "-profile-store", store,
		"-shadow-frac", "0.5", "-requests", "2", "-recover", "heal").CombinedOutput()
	if err != nil {
		t.Fatalf("second run: %v\n%s", err, out)
	}
	text = string(out)
	for _, want := range []string{
		"applying generation 1",
		"no heal delta; generation 1 stands",
		"(2 generation(s), active 1)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("second run missing %q:\n%s", want, text)
		}
	}
}

// TestCLIProfileStoreDiffGolden pins pkru-profile's store-diff rendering
// byte for byte on a fixed store: the added/removed/retained sections and
// the re-tighten proposals are all deterministic (sorted sites, explicit
// counts), so any drift is a semantics change. A non-empty re-tighten
// section exits 1, mirroring the plain diff's missing-sites contract.
func TestCLIProfileStoreDiffGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	profTool := buildTool(t, "pkru-profile")
	store := filepath.Join(t.TempDir(), "store.json")
	const fixture = `{
  "schema": 1,
  "active": 1,
  "generations": [
    {"seq": 0, "parent": -1, "source": "seed",
     "sites": {"a@0.0": {"faults": 1, "bytes": 64}, "b@0.0": {"faults": 1, "bytes": 32}}},
    {"seq": 1, "parent": 0, "source": "merge",
     "sites": {"a@0.0": {"faults": 2, "bytes": 128}, "c@1.0": {"faults": 1, "bytes": 16}}}
  ],
  "last_seen": {"a@0.0": 0, "b@0.0": 0, "c@1.0": 1}
}`
	if err := os.WriteFile(store, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	const golden = `store diff: generation 0 -> 1
added (1):
  + c@1.0
removed (1):
  - b@0.0
retained (1):
  = a@0.0
re-tighten candidates (window 1, proposed MU->MT demotions) (1):
  ~ a@0.0 last crossed in generation 0
`
	for run := 0; run < 2; run++ {
		out, err := exec.Command(profTool, "diff", "-store", store, "-window", "1").CombinedOutput()
		if err == nil {
			t.Fatalf("run %d: diff with re-tighten proposals should exit nonzero:\n%s", run, out)
		}
		if string(out) != golden {
			t.Errorf("run %d output differs from golden:\n--- got ---\n%s--- want ---\n%s", run, out, golden)
		}
	}
	// A window wide enough to clear the proposals exits zero.
	if out, err := exec.Command(profTool, "diff", "-store", store, "-window", "5").CombinedOutput(); err != nil {
		t.Errorf("wide-window diff should pass: %v\n%s", err, out)
	}
}
