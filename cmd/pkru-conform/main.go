// Command pkru-conform runs the MPK conformance harness from the command
// line: seeded differential fuzzing of the real enforcement stack against
// the reference model, and fault-injection validation of the oracle
// itself.
//
//	pkru-conform -seed 1 -traces 256 -ops 512        differential sweep
//	pkru-conform -fault all                          prove planted bugs are caught
//	pkru-conform -supervised                         supervised-gate recovery drill
//	pkru-conform -vkeys                              virtual-key multiplexing drill
//	pkru-conform -attacks                            Garmr attack corpus: red/green drills
//	pkru-conform -traces 64 -json -                  JSON telemetry summary
//
// On a divergence the shrunk counterexample is printed as a runnable Go
// test and the exit status is 1; in -fault mode the exit status is 1 when
// any planted bug goes undetected. The summary is exported through the
// repo's telemetry registry, so -json emits the same schema as every
// other tool's -metrics-json.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/conformance"
	"repro/internal/telemetry"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "base seed; trace i uses seed+i")
		traces = flag.Int("traces", 64, "number of generated traces to replay")
		ops    = flag.Int("ops", 512, "operations per trace")
		fault  = flag.String("fault", "", "fault-injection mode: skip-gate-restore|swallow-segv|leak-trusted-alloc|stale-setpkey|all")
		superv = flag.Bool("supervised", false, "run the supervised-gate drill: recovery must not change enforcement semantics")
		vkeys  = flag.Bool("vkeys", false, "run the virtual-key drill: multiplexing must not change enforcement semantics")
		atks   = flag.Bool("attacks", false, "run the Garmr attack corpus: every defense must hold its green drill and every attack its red drill")
		vkeyN  = flag.Int("vkey-domains", 0, "domain count for the -vkeys drill (0 = slots+3)")
		jsonTo = flag.String("json", "", "write the telemetry summary as JSON to this path (\"-\" = stdout)")
		table  = flag.Bool("table", false, "print the telemetry summary as a table")
		quiet  = flag.Bool("q", false, "suppress per-run progress output")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	m := &metrics{
		traces:      reg.Counter("pkruconform_traces_total", "Traces replayed differentially."),
		ops:         reg.Counter("pkruconform_ops_total", "Operations executed across all traces."),
		skipped:     reg.Counter("pkruconform_ops_skipped_total", "Operations skipped (dead slot / empty gate stack)."),
		outcomes:    reg.CounterVec("pkruconform_outcomes_total", "Real-stack outcomes by kind.", "kind"),
		divergences: reg.Counter("pkruconform_divergences_total", "Disagreements between the real stack and the model."),
		detected:    reg.CounterVec("pkruconform_faults_detected_total", "Planted faults detected by the oracle.", "fault"),
	}

	ok := true
	switch {
	case *atks:
		ok = runAttacks(*quiet)
	case *vkeys:
		ok = runVKeys(*vkeyN, *quiet)
	case *superv:
		ok = runSupervised(*quiet)
	case *fault != "":
		ok = runFaultInjection(*fault, m, *quiet)
	default:
		ok = runDifferential(*seed, *traces, *ops, m, *quiet)
	}

	if *table {
		fmt.Print(telemetry.FormatTable(reg.Snapshot()))
	}
	if *jsonTo != "" {
		if err := writeJSON(*jsonTo, reg); err != nil {
			fmt.Fprintln(os.Stderr, "pkru-conform:", err)
			os.Exit(1)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// metrics groups the registry handles the harness reports into.
type metrics struct {
	traces      *telemetry.Counter
	ops         *telemetry.Counter
	skipped     *telemetry.Counter
	outcomes    *telemetry.CounterVec
	divergences *telemetry.Counter
	detected    *telemetry.CounterVec
}

func (m *metrics) record(res *conformance.Result) {
	m.traces.Inc()
	m.ops.Add(uint64(res.Ops))
	m.skipped.Add(uint64(res.Skipped))
	for kind, n := range res.Counts {
		m.outcomes.With(kind.String()).Add(uint64(n))
	}
	m.divergences.Add(uint64(len(res.Divergences)))
}

// runDifferential replays generated traces and reports the first
// divergence as a shrunk, runnable Go test.
func runDifferential(seed int64, traces, ops int, m *metrics, quiet bool) bool {
	for i := 0; i < traces; i++ {
		s := seed + int64(i)
		tr := conformance.Generate(s, ops)
		res := conformance.Run(tr, conformance.Options{})
		m.record(res)
		if len(res.Divergences) > 0 {
			fmt.Fprintf(os.Stderr, "pkru-conform: seed %d: %d divergence(s); first:\n  %v\n",
				s, len(res.Divergences), res.Divergences[0])
			sh := conformance.Shrink(tr, conformance.Options{})
			fmt.Fprintf(os.Stderr, "shrunk repro (%d ops):\n%s", len(sh.Ops), conformance.FormatGoTest("Found", sh))
			return false
		}
	}
	if !quiet {
		fmt.Printf("pkru-conform: %d traces x %d ops (seeds %d..%d): no divergence from the reference model\n",
			traces, ops, seed, seed+int64(traces)-1)
	}
	return true
}

// runFaultInjection plants each requested bug and verifies the oracle
// catches it on the directed probe trace.
func runFaultInjection(mode string, m *metrics, quiet bool) bool {
	var faults []conformance.Fault
	if mode == "all" {
		faults = conformance.Faults()
	} else {
		f, ok := conformance.ParseFault(mode)
		if !ok || f == conformance.InjectNone {
			fmt.Fprintf(os.Stderr, "pkru-conform: unknown fault mode %q\n", mode)
			return false
		}
		faults = []conformance.Fault{f}
	}
	ok := true
	for _, f := range faults {
		tr := conformance.DirectedTrace(f)
		clean := conformance.Run(tr, conformance.Options{})
		m.record(clean)
		if len(clean.Divergences) > 0 {
			fmt.Fprintf(os.Stderr, "pkru-conform: %v probe trace diverges without injection: %v\n", f, clean.Divergences[0])
			ok = false
			continue
		}
		res := conformance.Run(tr, conformance.Options{Inject: f})
		m.record(res)
		if len(res.Divergences) == 0 {
			fmt.Fprintf(os.Stderr, "pkru-conform: planted fault %v NOT detected\n", f)
			ok = false
			continue
		}
		m.detected.With(f.String()).Inc()
		if !quiet {
			fmt.Printf("pkru-conform: %v detected (%d divergences; first: %v)\n", f, len(res.Divergences), res.Divergences[0])
		}
	}
	return ok
}

// runSupervised drills every recovery policy through the differential
// oracle: the recovering stack and the model must agree on PKRU, gate
// depth and the full page-key map after each unwind, and the drill's own
// planted skip-restore bug must be caught.
func runSupervised(quiet bool) bool {
	if err := conformance.DrillSupervised(); err != nil {
		fmt.Fprintln(os.Stderr, "pkru-conform:", err)
		return false
	}
	if !quiet {
		fmt.Println("pkru-conform: supervised-gate drill: retry/quarantine/heal recover without semantic drift; planted skip-restore caught")
	}
	return true
}

// runVKeys drills protection-key virtualization: the multiplexed stack
// must agree with the ideal unbounded-keys model across evictions, slot
// recycling and tenant churn, and the drill's planted
// stale-slot-after-eviction bug must be caught.
func runVKeys(domains int, quiet bool) bool {
	if err := conformance.DrillVKeys(); err != nil {
		fmt.Fprintln(os.Stderr, "pkru-conform:", err)
		return false
	}
	if domains > 0 {
		rep, err := conformance.RunVKeyDrill(conformance.VKeyOptions{Domains: domains})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pkru-conform:", err)
			return false
		}
		if len(rep.Divergences) > 0 {
			fmt.Fprintf(os.Stderr, "pkru-conform: vkeys at %d domains: %s\n", domains, rep.Divergences[0])
			return false
		}
		if !quiet {
			fmt.Printf("pkru-conform: vkeys at %d domains on %d slots: %d probes, %d evictions, no divergence\n",
				rep.Domains, rep.Slots, rep.Probes, rep.Evictions)
		}
	}
	if !quiet {
		fmt.Println("pkru-conform: virtual-key drill: multiplexing is semantically invisible; planted stale-slot-after-eviction caught")
	}
	return true
}

// runAttacks drills the Garmr attack corpus: one verdict line per
// red/green drill, non-zero exit when any drill fails — red proves each
// attack still works with its defense disabled (and that the harness
// detects the breach), green proves the armed defense kills it with the
// expected fault.
func runAttacks(quiet bool) bool {
	results := attack.RunAll()
	fail := 0
	for _, r := range results {
		if !r.Pass {
			fail++
		}
		if !quiet || !r.Pass {
			fmt.Println(r.Verdict())
		}
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "pkru-conform: attack corpus: %d of %d drills failed\n", fail, len(results))
		return false
	}
	if !quiet {
		fmt.Printf("pkru-conform: attack corpus: %d scenarios x red+green drills: every attack has teeth, every defense holds\n", len(results)/2)
	}
	return true
}

func writeJSON(path string, reg *telemetry.Registry) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return reg.Snapshot().WriteJSON(w)
}
