// Command pkru-bench regenerates the paper's evaluation tables and
// figures on the simulated machine:
//
//	pkru-bench -experiment micro      §5.2 call-gate micro-benchmarks
//	pkru-bench -experiment fig3       Figure 3: gate overhead vs work
//	pkru-bench -experiment dromaeo    Table 2 + Figure 4
//	pkru-bench -experiment kraken     Figure 5
//	pkru-bench -experiment octane     Figure 6
//	pkru-bench -experiment jetstream  Figure 7 + Table 3
//	pkru-bench -experiment table1     Table 1 (all four suites)
//	pkru-bench -experiment sites      §5.3 allocation-site statistics
//	pkru-bench -experiment recovery   fault supervision overhead (fault-free)
//	pkru-bench -experiment profiling  crossing-sampler overhead (docs/profiling.md)
//	pkru-bench -experiment vkeys      virtual-key slot-miss overhead (docs/domains.md)
//	pkru-bench -experiment resilience hostile-tenant containment overhead (docs/recovery.md)
//	pkru-bench -experiment all        everything above
//
// Absolute times are the simulator's, not the paper testbed's; the
// reproduced result is the shape: which configurations win, how overhead
// tracks compartment-transition density, and where it vanishes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "micro|fig3|table1|dromaeo|kraken|octane|jetstream|sites|ablation|recovery|profiling|vkeys|resilience|all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (lower = faster)")
	repeats := flag.Int("repeats", 3, "timed repetitions per configuration (min kept)")
	microIters := flag.Int("micro-iters", 200000, "iterations per micro-benchmark measurement")
	csvDir := flag.String("csv", "", "directory to also write per-suite CSV data into")
	jsonDir := flag.String("json", "", "directory to also write per-suite JSON reports (timings + telemetry) into")
	flag.Parse()

	opt := bench.Options{Scale: *scale, Repeats: *repeats}
	run := func(name string) bool { return *experiment == name || *experiment == "all" }

	if run("micro") {
		rs, err := bench.RunMicro(*microIters)
		exitOn(err)
		fmt.Println(bench.FormatMicro(rs))
	}
	if run("fig3") {
		pts, err := bench.RunGateSweep(bench.DefaultSweepCounts(), *microIters/10)
		exitOn(err)
		fmt.Println(bench.FormatSweep(pts))
	}

	suites := workload.Suites()
	reports := map[string]bench.SuiteReport{}
	need := func(name string) bench.SuiteReport {
		if r, ok := reports[name]; ok {
			return r
		}
		fmt.Fprintf(os.Stderr, "running suite %s (%d benchmarks x 3 configs)...\n", name, len(suites[name]))
		r, err := bench.RunSuite(name, suites[name], opt)
		exitOn(err)
		reports[name] = r
		if *csvDir != "" {
			writeReport(filepath.Join(*csvDir, name+".csv"), r, bench.WriteCSV)
		}
		if *jsonDir != "" {
			writeReport(filepath.Join(*jsonDir, name+".json"), r, bench.WriteJSON)
		}
		return r
	}

	if run("dromaeo") {
		r := need("dromaeo")
		fmt.Println(bench.FormatTable2(r))
		fmt.Println(bench.FormatFigure("Figure 4: Dromaeo sub-suites", r))
	}
	if run("kraken") {
		fmt.Println(bench.FormatFigure("Figure 5: Kraken", need("kraken")))
	}
	if run("octane") {
		fmt.Println(bench.FormatFigure("Figure 6: Octane", need("octane")))
	}
	if run("jetstream") {
		r := need("jetstream2")
		fmt.Println(bench.FormatFigure("Figure 7: JetStream2", r))
		fmt.Println(bench.FormatTable3(r))
	}
	if run("table1") {
		t1 := []bench.SuiteReport{need("dromaeo"), need("jetstream2"), need("kraken"), need("octane")}
		fmt.Println(bench.FormatTable1(t1))
	}
	if run("ablation") {
		rs, err := bench.RunAblations()
		exitOn(err)
		fmt.Println(bench.FormatAblations(rs))
	}
	if run("sites") {
		r, err := bench.RunSites()
		exitOn(err)
		fmt.Println(bench.FormatSites(r))
	}
	if run("recovery") {
		rs, err := bench.RunRecovery(*microIters)
		exitOn(err)
		fmt.Println(bench.FormatRecovery(rs))
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "recovery.json")
			f, err := os.Create(path)
			exitOn(err)
			exitOn(bench.WriteRecoveryJSON(f, *microIters, rs))
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if run("profiling") {
		rs, stats, err := bench.RunProfiling(*microIters)
		exitOn(err)
		fmt.Println(bench.FormatProfiling(rs, stats))
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "profiling.json")
			f, err := os.Create(path)
			exitOn(err)
			exitOn(bench.WriteProfilingJSON(f, *microIters, rs, stats))
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if run("vkeys") {
		rs, err := bench.RunVKeys(*microIters)
		exitOn(err)
		fmt.Println(bench.FormatVKeys(rs))
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "vkeys.json")
			f, err := os.Create(path)
			exitOn(err)
			exitOn(bench.WriteVKeysJSON(f, *microIters, rs))
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if run("resilience") {
		iters := *microIters / 10
		rs, err := bench.RunResilience(iters)
		exitOn(err)
		fmt.Println(bench.FormatResilience(rs))
		if *jsonDir != "" {
			path := filepath.Join(*jsonDir, "resilience.json")
			f, err := os.Create(path)
			exitOn(err)
			exitOn(bench.WriteResilienceJSON(f, iters, rs))
			exitOn(f.Close())
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if !anyExperiment(*experiment) {
		fmt.Fprintf(os.Stderr, "pkru-bench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

func writeReport(path string, r bench.SuiteReport, write func(io.Writer, bench.SuiteReport) error) {
	f, err := os.Create(path)
	exitOn(err)
	exitOn(write(f, r))
	exitOn(f.Close())
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func anyExperiment(name string) bool {
	switch name {
	case "micro", "fig3", "table1", "dromaeo", "kraken", "octane", "jetstream", "sites", "ablation", "recovery", "profiling", "vkeys", "resilience", "all":
		return true
	}
	return false
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-bench:", err)
		os.Exit(1)
	}
}
