// Command pkru-servo runs the browser simulator on an HTML page and a
// script under one of the paper's build configurations, optionally
// collecting or consuming a sharing profile:
//
//	pkru-servo -config profiling -html page.html -script app.js -profile-out app.prof
//	pkru-servo -config mpk -html page.html -script app.js -profile app.prof
//
// Without -html/-script a built-in demo page and script are used.
//
// -recover selects a compartment fault recovery policy (abort, the
// default, keeps fail-stop; retry, quarantine and heal make engine
// faults survivable) and -requests N executes the script N times as
// independent requests: a request whose script dies in the engine is
// dropped and reported, but the browser keeps serving the rest — the
// request-level isolation a real embedder wants from the supervisor.
//
// -metrics / -metrics-json export the run's telemetry in Prometheus text
// or JSON form ("-" = stdout); -listen serves the live observability
// endpoints (/metrics, /snapshot.json, /trace, /healthz, /debug/pprof,
// and — with -profile-store — /profile, /profile/diff, /profile/shadow)
// while the workload runs. If the script dies on an MPK violation the
// crash report is printed to stderr before exit 1.
//
// -domains N switches the binary into the multi-tenant domain workload
// (docs/domains.md) instead of the browser: N logical domains — far more
// than the 13 hardware key slots — are entered concurrently by worker
// threads while tenants churn, exercising the virtual-key table's LRU
// eviction, slot recycling and eviction-time PKRU revocation. The
// pkrusafe_vkey_* gauges and counters are live on -listen's /metrics
// while the workload runs.
//
// -profile-store closes the profiling loop (docs/profiling.md): the
// active generation of a generational profile store supplies the applied
// profile, the crossing sampler feeds live boundary observations back,
// and heal deltas are committed as a candidate generation. With
// -shadow-frac F > 0 the candidate is staged: the request workload is
// replayed with fraction F of requests on the candidate (shadow arm) and
// the rest on the active generation (control arm); the candidate is
// promoted only if the shadow arm's fault rate does not regress. The
// store file is rewritten at exit either way. -trace-out persists the
// trace ring — including crossing and profile-swap events — to a file.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
)

const demoHTML = `
<body>
	<div id="app" class="demo">
		<h1 id="title">pkru-servo</h1>
		<ul id="items"><li>one</li><li>two</li></ul>
	</div>
</body>`

const demoScript = `
	var app = byId("app");
	var title = byId("title");
	print("title text: " + getText(title));
	for (var i = 0; i < 5; i++) {
		var li = createElement("li");
		appendChild(byId("items"), li);
		setText(li, "generated " + i);
	}
	reflow();
	print("items: " + childCount(byId("items")));
	childCount(byId("items"));
`

// traceCap sizes the runtime event ring backing /trace and crash reports.
const traceCap = 256

func main() {
	cfgName := flag.String("config", "mpk", "base|alloc|mpk|profiling")
	htmlPath := flag.String("html", "", "HTML file to load (default: built-in demo)")
	scriptPath := flag.String("script", "", "script file to run (default: built-in demo)")
	profileIn := flag.String("profile", "", "profile JSON consumed by alloc/mpk builds")
	profileOut := flag.String("profile-out", "", "profile JSON written by a profiling build")
	metrics := flag.String("metrics", "", `write Prometheus metrics to this path ("-" = stdout)`)
	metricsJSON := flag.String("metrics-json", "", `write a JSON metrics snapshot to this path ("-" = stdout)`)
	listen := flag.String("listen", "", "serve /metrics, /snapshot.json, /trace, /healthz and /debug/pprof on this address while running")
	recoverName := flag.String("recover", "abort", "compartment fault recovery policy: abort|retry|quarantine|heal")
	requests := flag.Int("requests", 1, "execute the script this many times as independent requests")
	profileStore := flag.String("profile-store", "", "generational profile store JSON (created if missing); supplies the applied profile and absorbs heal deltas")
	shadowFrac := flag.Float64("shadow-frac", 0, "stage committed candidate generations on this fraction of replayed requests before promoting")
	traceOut := flag.String("trace-out", "", `write the trace ring to this path at exit ("-" = stdout)`)
	nDomains := flag.Int("domains", 0, "run the multi-tenant domain workload with this many logical domains instead of the browser")
	domainWorkers := flag.Int("domain-workers", 4, "concurrent worker threads for the -domains workload")
	domainCycles := flag.Int("domain-cycles", 2000, "domain entries per worker for the -domains workload")
	flag.Parse()

	if *nDomains > 0 {
		runDomains(*nDomains, *domainWorkers, *domainCycles, *listen, *metrics, *metricsJSON)
		return
	}

	policy, err := supervise.ParsePolicy(*recoverName)
	exitOn(err)

	html, script := demoHTML, demoScript
	if *htmlPath != "" {
		data, err := os.ReadFile(*htmlPath)
		exitOn(err)
		html = string(data)
	}
	if *scriptPath != "" {
		data, err := os.ReadFile(*scriptPath)
		exitOn(err)
		script = string(data)
	}

	var cfg core.BuildConfig
	switch *cfgName {
	case "base":
		cfg = core.Base
	case "alloc":
		cfg = core.Alloc
	case "mpk":
		cfg = core.MPK
	case "profiling":
		cfg = core.Profiling
	default:
		fmt.Fprintf(os.Stderr, "pkru-servo: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	var store *profstore.Store
	if *profileStore != "" {
		if *profileIn != "" {
			fmt.Fprintln(os.Stderr, "pkru-servo: -profile and -profile-store are mutually exclusive")
			os.Exit(2)
		}
		if cfg != core.Alloc && cfg != core.MPK {
			fmt.Fprintf(os.Stderr, "pkru-servo: -profile-store needs -config alloc or mpk (got %v)\n", cfg)
			os.Exit(2)
		}
		store, err = profstore.LoadFileOrNew(*profileStore)
		exitOn(err)
	}

	var prof *profile.Profile
	if store != nil {
		// The store's active generation is the applied profile; a fresh
		// store starts from the empty seed and heals its way forward.
		prof = store.Active().Sites
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store %s: applying generation %d (%d site(s))\n",
			*profileStore, store.ActiveSeq(), prof.Len())
	} else if cfg == core.Alloc || cfg == core.MPK {
		prof = profile.New()
		if *profileIn != "" {
			data, err := os.ReadFile(*profileIn)
			exitOn(err)
			exitOn(json.Unmarshal(data, prof))
		} else if cfg == core.MPK {
			// No profile given: collect one from this very workload, the
			// way a developer would before shipping the enforced build.
			fmt.Fprintln(os.Stderr, "pkru-servo: no -profile; collecting one from this workload first")
			p, err := browser.CollectProfile(func(b *browser.Browser) error {
				if err := b.LoadHTML(html); err != nil {
					return err
				}
				_, err := b.ExecScript(script)
				return err
			}, browser.Options{ScriptOutput: os.Stderr})
			exitOn(err)
			prof = p
		}
	}

	opts := browser.Options{
		ScriptOutput: os.Stdout,
		Trace:        trace.NewRing(traceCap),
		Forensics:    true,
		Supervision:  supervise.Config{Policy: policy},
		Crossings:    store != nil,
	}
	var reg *telemetry.Registry
	if *metrics != "" || *metricsJSON != "" || *listen != "" || store != nil {
		reg = telemetry.NewRegistry()
		opts.Telemetry = reg
	}
	var rollout *profstore.Rollout
	if store != nil {
		store.SetTrace(opts.Trace)
		store.SetTelemetry(reg)
		rollout = profstore.NewRollout(store, *shadowFrac, reg)
	}

	b, err := browser.New(cfg, prof, opts)
	exitOn(err)

	var srv *obs.Server
	if *listen != "" {
		srv, err = obs.ListenAndServe(*listen, obs.ServerConfig{
			Registry: reg, Ring: opts.Trace, Profiles: store, Rollout: rollout})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkru-servo: observability server on %s\n", srv.URL())
	}

	crashOn := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, "pkru-servo:", err)
		if rep, ok := b.Prog.Forensics().Capture(err); ok {
			_ = rep.WriteText(os.Stderr)
		}
		closeServer(srv)
		os.Exit(1)
	}
	crashOn(b.LoadHTML(html))

	// The request loop: each script execution is one supervised request. A
	// request the supervisor could not save is dropped — logged with its
	// typed compartment error — without taking the service down; any other
	// error is a genuine crash.
	served, dropped := 0, 0
	for i := 1; i <= *requests; i++ {
		result, err := b.ExecScript(script)
		var cerr *supervise.CompartmentError
		if errors.As(err, &cerr) {
			dropped++
			fmt.Fprintf(os.Stderr, "pkru-servo: request %d/%d dropped (%s): %v\n", i, *requests, cerr.Outcome, cerr.Err)
			continue
		}
		crashOn(err)
		served++
		fmt.Printf("script result: %g\n", result)
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: crash averted: served %d/%d request(s), dropped %d under policy %s\n",
			served, *requests, dropped, policy)
	}

	if store != nil {
		runProfilePlane(b, store, rollout, cfg, *shadowFrac, *requests, html, script, policy, reg)
		exitOn(store.SaveFile(*profileStore))
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store saved to %s (%d generation(s), active %d)\n",
			*profileStore, store.Len(), store.ActiveSeq())
	}

	st := b.Stats()
	fmt.Printf("config=%v transitions=%d dom-ops=%d sites=%d shared-sites=%d %%MU=%.2f%%\n",
		cfg, st.Transitions, st.DOMOps, st.TotalSites, st.UntrustedSites, 100*st.UntrustedShare)

	if reg != nil {
		if *metrics != "" {
			writeTo(*metrics, reg.WritePrometheus)
		}
		if *metricsJSON != "" {
			writeTo(*metricsJSON, reg.Snapshot().WriteJSON)
		}
	}

	if cfg == core.Profiling && *profileOut != "" {
		p, err := b.Prog.RecordedProfile()
		exitOn(err)
		data, err := json.MarshalIndent(p, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*profileOut, data, 0o644))
		fmt.Printf("profile with %d shared sites written to %s\n", p.Len(), *profileOut)
	}
	if *traceOut != "" {
		writeTo(*traceOut, func(w io.Writer) error { opts.Trace.Dump(w); return nil })
	}
	closeServer(srv)
}

// runDomains drives the multi-tenant domain workload: n logical domains
// multiplexed onto the hardware key slots, entered concurrently by
// worker threads with their own rights registers while a churn loop
// removes and re-adds tenants underneath them. Every entry goes through
// the audited gate path; cross-tenant probes must deny; churn must
// recycle both key slots and pool regions. The virtual-key telemetry is
// live on -listen's /metrics for the duration.
func runDomains(n, workers, cycles int, listen, metricsPath, metricsJSONPath string) {
	if workers < 1 {
		workers = 1
	}
	space := vm.NewSpace()
	m, err := domains.NewManager(space)
	exitOn(err)

	reg := telemetry.NewRegistry()
	m.SetTelemetry(reg)
	entries := reg.Counter("pkruservo_domain_entries_total", "Domain entries completed by the tenant workload.")
	reads := reg.Counter("pkruservo_domain_reads_total", "In-domain reads of the tenant's own pool that succeeded.")
	denied := reg.Counter("pkruservo_domain_denied_total", "Cross-tenant probes correctly denied by the hardware keys.")
	leaks := reg.Counter("pkruservo_domain_leaks_total", "Cross-tenant probes that wrongly succeeded (must stay 0).")
	churned := reg.Counter("pkruservo_domain_churn_total", "Tenants removed and re-added while the workload ran.")

	var srv *obs.Server
	if listen != "" {
		srv, err = obs.ListenAndServe(listen, obs.ServerConfig{Registry: reg})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkru-servo: observability server on %s\n", srv.URL())
	}

	// Tenant table: each tenant's current buffer address, swapped atomically
	// under its lock when churn recreates the pool. Workers racing a churn
	// see either address; a stale one simply faults (a denied probe), which
	// is the safe outcome.
	name := func(i int) string { return fmt.Sprintf("tenant%03d", i) }
	type tenant struct {
		mu  sync.Mutex
		buf vm.Addr
	}
	tenants := make([]*tenant, n)
	setup := vm.NewThread(space, nil) // trusted: PermitAll
	addTenant := func(i int) error {
		d, err := m.AddDomain(name(i))
		if err != nil {
			return err
		}
		buf, err := m.Alloc(d, 64)
		if err != nil {
			return err
		}
		if err := setup.Store64(buf, uint64(i)); err != nil {
			return err
		}
		tenants[i].mu.Lock()
		tenants[i].buf = buf
		tenants[i].mu.Unlock()
		return nil
	}
	bufOf := func(i int) vm.Addr {
		tenants[i].mu.Lock()
		defer tenants[i].mu.Unlock()
		return tenants[i].buf
	}
	for i := 0; i < n; i++ {
		tenants[i] = &tenant{}
		exitOn(addTenant(i))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := vm.NewThread(space, nil)
			for c := 0; c < cycles; c++ {
				i := (w + c) % n
				d, ok := m.Domain(name(i))
				if !ok {
					continue // churned away between pick and lookup
				}
				restore, err := m.Enter(th, d)
				if err != nil {
					continue // churned away between lookup and enter
				}
				if _, err := th.Load64(bufOf(i)); err == nil {
					reads.Inc()
				}
				if _, err := th.Load64(bufOf((i + 1) % n)); err != nil {
					denied.Inc()
				} else {
					leaks.Inc()
				}
				if err := restore(); err != nil {
					fmt.Fprintf(os.Stderr, "pkru-servo: domain restore: %v\n", err)
				}
				entries.Inc()
			}
		}(w)
	}

	// Churn loop: while the workers run, rotate tenants out and back in so
	// key recycling and pool scrubbing happen under live concurrent entry.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	victim := 0
churn:
	for {
		select {
		case <-done:
			break churn
		case <-time.After(50 * time.Microsecond):
		}
		i := victim % n
		victim++
		// Touch the victim first so it holds a hardware slot when removed:
		// removal of an active tenant is the interesting case, exercising
		// slot recycling and bound-thread revocation rather than just
		// discarding a parked key.
		if d, ok := m.Domain(name(i)); ok {
			if restore, err := m.Enter(setup, d); err == nil {
				_ = restore()
			}
		}
		if err := m.RemoveDomain(name(i)); err != nil {
			continue
		}
		if err := addTenant(i); err != nil {
			fmt.Fprintf(os.Stderr, "pkru-servo: tenant re-add: %v\n", err)
			os.Exit(1)
		}
		churned.Inc()
	}
	elapsed := time.Since(start)

	st := m.Table().Stats()
	if leaks.Value() > 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: ISOLATION FAILURE: %d cross-tenant probe(s) succeeded\n", leaks.Value())
	}
	fmt.Printf("domains=%d slots=%d workers=%d entries=%d reads=%d denied-probes=%d leaks=%d churn=%d elapsed=%v\n",
		n, st.Slots, workers, entries.Value(), reads.Value(), denied.Value(), leaks.Value(), churned.Value(), elapsed.Round(time.Millisecond))
	fmt.Printf("vkeys: logical=%d active=%d parked=%d activations=%d slot-misses=%d evictions=%d recycled=%d invalidations=%d\n",
		st.Logical, st.Active, st.Parked, st.Activations, st.SlotMisses, st.Evictions, st.Recycled, st.Invalidations)

	if metricsPath != "" {
		writeTo(metricsPath, reg.WritePrometheus)
	}
	if metricsJSONPath != "" {
		writeTo(metricsJSONPath, reg.Snapshot().WriteJSON)
	}
	closeServer(srv)
	if leaks.Value() > 0 {
		os.Exit(1)
	}
}

// runProfilePlane closes the profiling loop after the serving phase: live
// crossing observations feed re-tighten bookkeeping, the heal delta (if
// any) is committed as a candidate generation, and — with a shadow
// fraction — the candidate is staged by replaying the request workload
// across a control browser (active generation) and a shadow browser
// (candidate), promoting only if the shadow arm's fault rate does not
// regress past control's.
func runProfilePlane(b *browser.Browser, store *profstore.Store, rollout *profstore.Rollout,
	cfg core.BuildConfig, frac float64, requests int, html, script string,
	policy supervise.Policy, reg *telemetry.Registry) {

	if cs := b.Prog.Crossings(); cs.Sampled() > 0 {
		cs.FeedStore(store)
		fmt.Fprintf(os.Stderr, "pkru-servo: crossings: %d sampled, %d allocation site(s) attributed\n",
			cs.Sampled(), len(cs.Sites()))
	}
	delta := b.Prog.Supervisor().Delta()
	if delta.Len() == 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store: no heal delta; generation %d stands\n", store.ActiveSeq())
		return
	}
	cand := store.Commit(delta, "heal")
	fmt.Fprintf(os.Stderr, "pkru-servo: profile store: committed candidate generation %d (source heal, %d site(s))\n",
		cand.Seq, cand.Sites.Len())
	if frac <= 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store: -shadow-frac 0; candidate %d held for offline promotion\n", cand.Seq)
		return
	}

	// Staged comparison: fresh browsers per arm so the control arm really
	// runs the pre-heal active generation (the serving browser has already
	// healed itself and would mask the regression being tested for).
	rollout.SetCandidate(cand.Seq)
	newArm := func(p *profile.Profile) *browser.Browser {
		ab, err := browser.New(cfg, p, browser.Options{
			ScriptOutput: io.Discard,
			Forensics:    true,
			Supervision:  supervise.Config{Policy: policy},
			Telemetry:    reg,
		})
		exitOn(err)
		exitOn(ab.LoadHTML(html))
		return ab
	}
	arms := map[string]*browser.Browser{
		profstore.ArmControl: newArm(store.Active().Sites),
		profstore.ArmShadow:  newArm(cand.Sites),
	}
	for i := 0; i < requests; i++ {
		arm := rollout.Assign()
		ab := arms[arm]
		before := len(ab.Prog.Supervisor().Events())
		_, err := ab.ExecScript(script)
		fault := false
		var cerr *supervise.CompartmentError
		if errors.As(err, &cerr) {
			fault = true
		} else {
			exitOn(err)
		}
		if len(ab.Prog.Supervisor().Events()) > before {
			fault = true
		}
		rollout.Record(arm, fault)
	}
	dec, err := rollout.Decide()
	exitOn(err)
	verdict := "rolled back"
	if dec.Promote {
		verdict = "promoted"
	}
	fmt.Fprintf(os.Stderr, "pkru-servo: profile rollout: candidate %d %s: %s (control %d/%d faulted, shadow %d/%d)\n",
		dec.Candidate, verdict, dec.Reason,
		dec.Control.Faults, dec.Control.Requests, dec.Shadow.Faults, dec.Shadow.Requests)
}

// writeTo writes via f to path, with "-" meaning stdout. File output is
// buffered so a failed export never leaves a truncated file behind.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		exitOn(f(os.Stdout))
		return
	}
	var buf bytes.Buffer
	exitOn(f(&buf))
	exitOn(os.WriteFile(path, buf.Bytes(), 0o644))
}

// closeServer drains the observability server before exit (nil-safe).
func closeServer(srv *obs.Server) {
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pkru-servo: observability server:", err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-servo:", err)
		os.Exit(1)
	}
}
