// Command pkru-servo runs the browser simulator on an HTML page and a
// script under one of the paper's build configurations, optionally
// collecting or consuming a sharing profile:
//
//	pkru-servo -config profiling -html page.html -script app.js -profile-out app.prof
//	pkru-servo -config mpk -html page.html -script app.js -profile app.prof
//
// Without -html/-script a built-in demo page and script are used.
//
// -recover selects a compartment fault recovery policy (abort, the
// default, keeps fail-stop; retry, quarantine and heal make engine
// faults survivable) and -requests N executes the script N times as
// independent requests: a request whose script dies in the engine is
// dropped and reported, but the browser keeps serving the rest — the
// request-level isolation a real embedder wants from the supervisor.
//
// -metrics / -metrics-json export the run's telemetry in Prometheus text
// or JSON form ("-" = stdout); -listen serves the live observability
// endpoints (/metrics, /snapshot.json, /trace, /trace.json,
// /domains.json, /healthz, /debug/pprof, and — with -profile-store —
// /profile, /profile/diff, /profile/shadow) while the workload runs. If
// the script dies on an MPK violation the crash report is printed to
// stderr before exit 1.
//
// -domains N switches the binary into the multi-tenant domain workload
// (docs/domains.md) instead of the browser: N logical domains — far more
// than the 13 hardware key slots — are called into through ffi call
// gates by worker threads while tenants churn, exercising the
// virtual-key table's LRU eviction, slot recycling and eviction-time
// PKRU revocation. Every request runs under a request-scoped trace
// context (docs/tracing.md): gate enter/exit, faults, supervisor
// recovery actions and slot evictions correlate under one trace ID with
// the tenant's label. -inject-fault makes selected requests touch the
// trusted heap from inside their domain — a pkey fault the -recover
// policy then answers — so the retained traces show the full
// fault→recovery arc; "40" injects into every 40th request globally,
// "tenant3:0.2" into 20% of tenant3's requests (deterministically).
// The pkrusafe_vkey_* and gate-latency families are live on -listen's
// /metrics while the workload runs.
//
// -hostile=<tenant> turns one tenant of the -domains workload
// compromised: its requests run the internal/attack payload roster
// (trusted reads, rogue WRPKRUs, cross-tenant probes) through its own
// gates. Each tenant fronts a circuit breaker (docs/recovery.md): the
// hostile tenant's faults trip it, later requests are shed at admission
// with a typed refusal before touching any gate, and the supervisor
// quarantines only that tenant's pool (its epoch bumps; nobody else's).
// Healthy tenants' slots are pinned against eviction while the breaker
// is open. The run prints a "resilience:" verdict block and exits
// non-zero if containment failed. -churn=false freezes the tenant set
// for deterministic rehearsals; -breaker-probe-after overrides the
// open→half-open backoff; /tenants.json on -listen serves live
// breaker/epoch state.
//
// -latency-out writes a schema-versioned per-tenant latency report
// (p50/p95/p99 and throughput, the numbers behind BENCH_gatetrace.json);
// -trace-json writes the retained traces as Chrome trace_event JSON
// loadable in chrome://tracing or Perfetto; -adapt-target wires the
// adaptive controller that retunes the crossing sampler's interval from
// the live gate-latency p99.
//
// -profile-store closes the profiling loop (docs/profiling.md): the
// active generation of a generational profile store supplies the applied
// profile, the crossing sampler feeds live boundary observations back,
// and heal deltas are committed as a candidate generation. With
// -shadow-frac F > 0 the candidate is staged: the request workload is
// replayed with fraction F of requests on the candidate (shadow arm) and
// the rest on the active generation (control arm); the candidate is
// promoted only if the shadow arm's fault rate does not regress. The
// store file is rewritten at exit either way. -trace-out persists the
// trace ring — including crossing and profile-swap events — to a file.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/resilience"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

const demoHTML = `
<body>
	<div id="app" class="demo">
		<h1 id="title">pkru-servo</h1>
		<ul id="items"><li>one</li><li>two</li></ul>
	</div>
</body>`

const demoScript = `
	var app = byId("app");
	var title = byId("title");
	print("title text: " + getText(title));
	for (var i = 0; i < 5; i++) {
		var li = createElement("li");
		appendChild(byId("items"), li);
		setText(li, "generated " + i);
	}
	reflow();
	print("items: " + childCount(byId("items")));
	childCount(byId("items"));
`

// traceCap sizes the runtime event ring backing /trace and crash reports.
const traceCap = 256

// retainedCap sizes the gatetrace retained-trace ring: enough flagged
// requests for a useful /trace.json timeline without unbounded memory.
const retainedCap = 256

func main() {
	cfgName := flag.String("config", "mpk", "base|alloc|mpk|profiling")
	htmlPath := flag.String("html", "", "HTML file to load (default: built-in demo)")
	scriptPath := flag.String("script", "", "script file to run (default: built-in demo)")
	profileIn := flag.String("profile", "", "profile JSON consumed by alloc/mpk builds")
	profileOut := flag.String("profile-out", "", "profile JSON written by a profiling build")
	metrics := flag.String("metrics", "", `write Prometheus metrics to this path ("-" = stdout)`)
	metricsJSON := flag.String("metrics-json", "", `write a JSON metrics snapshot to this path ("-" = stdout)`)
	listen := flag.String("listen", "", "serve /metrics, /snapshot.json, /trace, /trace.json, /domains.json, /healthz and /debug/pprof on this address while running")
	recoverName := flag.String("recover", "abort", "compartment fault recovery policy: abort|retry|quarantine|heal")
	requests := flag.Int("requests", 1, "execute the script this many times as independent requests")
	profileStore := flag.String("profile-store", "", "generational profile store JSON (created if missing); supplies the applied profile and absorbs heal deltas")
	shadowFrac := flag.Float64("shadow-frac", 0, "stage committed candidate generations on this fraction of replayed requests before promoting")
	traceOut := flag.String("trace-out", "", `write the trace ring to this path at exit ("-" = stdout)`)
	traceJSON := flag.String("trace-json", "", `write retained request traces as Chrome trace_event JSON to this path at exit ("-" = stdout)`)
	latencyOut := flag.String("latency-out", "", `write a schema-versioned per-tenant latency/throughput report to this path ("-" = stdout)`)
	tailThreshold := flag.Duration("trace-tail", 0, "additionally retain clean request traces at least this slow (0 = flagged traces only)")
	injectFault := flag.String("inject-fault", "", `-domains only: inject compartment faults ("40" = every 40th request; "tenant3:0.2" = 20% of tenant3's requests; "tenant3:5" = every 5th of tenant3's)`)
	adaptTarget := flag.Duration("adapt-target", 0, "retune the crossing sampler's interval from the live gate-latency p99 around this target (0 = off)")
	sampleInterval := flag.Int("sample-interval", 8, "initial crossing-sampler interval for the -domains workload")
	nDomains := flag.Int("domains", 0, "run the multi-tenant domain workload with this many logical domains instead of the browser")
	domainWorkers := flag.Int("domain-workers", 4, "concurrent worker threads for the -domains workload")
	domainCycles := flag.Int("domain-cycles", 2000, "domain entries per worker for the -domains workload")
	hostile := flag.String("hostile", "", "-domains only: this tenant runs the attack payload roster instead of honest work; prints a resilience verdict and exits non-zero on a containment breach")
	churn := flag.Bool("churn", true, "-domains only: rotate tenants out and back in while the workload runs (disable for deterministic rehearsals)")
	probeAfter := flag.Duration("breaker-probe-after", 0, "-domains only: base open→half-open breaker backoff (0 = the resilience default)")
	flag.Parse()

	faultSpec, err := workload.ParseFaultSpec(*injectFault)
	exitOn(err)

	if *nDomains > 0 {
		runDomains(domainRunConfig{
			n:              *nDomains,
			workers:        *domainWorkers,
			cycles:         *domainCycles,
			listen:         *listen,
			metrics:        *metrics,
			metricsJSON:    *metricsJSON,
			recoverName:    *recoverName,
			latencyOut:     *latencyOut,
			traceJSON:      *traceJSON,
			traceOut:       *traceOut,
			tailThreshold:  *tailThreshold,
			fault:          faultSpec,
			adaptTarget:    *adaptTarget,
			sampleInterval: *sampleInterval,
			hostile:        *hostile,
			churn:          *churn,
			probeAfter:     *probeAfter,
		})
		return
	}
	if *hostile != "" {
		fmt.Fprintln(os.Stderr, "pkru-servo: -hostile needs the -domains workload")
		os.Exit(2)
	}

	policy, err := supervise.ParsePolicy(*recoverName)
	exitOn(err)

	html, script := demoHTML, demoScript
	if *htmlPath != "" {
		data, err := os.ReadFile(*htmlPath)
		exitOn(err)
		html = string(data)
	}
	if *scriptPath != "" {
		data, err := os.ReadFile(*scriptPath)
		exitOn(err)
		script = string(data)
	}

	var cfg core.BuildConfig
	switch *cfgName {
	case "base":
		cfg = core.Base
	case "alloc":
		cfg = core.Alloc
	case "mpk":
		cfg = core.MPK
	case "profiling":
		cfg = core.Profiling
	default:
		fmt.Fprintf(os.Stderr, "pkru-servo: unknown config %q\n", *cfgName)
		os.Exit(2)
	}

	var store *profstore.Store
	if *profileStore != "" {
		if *profileIn != "" {
			fmt.Fprintln(os.Stderr, "pkru-servo: -profile and -profile-store are mutually exclusive")
			os.Exit(2)
		}
		if cfg != core.Alloc && cfg != core.MPK {
			fmt.Fprintf(os.Stderr, "pkru-servo: -profile-store needs -config alloc or mpk (got %v)\n", cfg)
			os.Exit(2)
		}
		store, err = profstore.LoadFileOrNew(*profileStore)
		exitOn(err)
	}

	var prof *profile.Profile
	if store != nil {
		// The store's active generation is the applied profile; a fresh
		// store starts from the empty seed and heals its way forward.
		prof = store.Active().Sites
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store %s: applying generation %d (%d site(s))\n",
			*profileStore, store.ActiveSeq(), prof.Len())
	} else if cfg == core.Alloc || cfg == core.MPK {
		prof = profile.New()
		if *profileIn != "" {
			data, err := os.ReadFile(*profileIn)
			exitOn(err)
			exitOn(json.Unmarshal(data, prof))
		} else if cfg == core.MPK {
			// No profile given: collect one from this very workload, the
			// way a developer would before shipping the enforced build.
			fmt.Fprintln(os.Stderr, "pkru-servo: no -profile; collecting one from this workload first")
			p, err := browser.CollectProfile(func(b *browser.Browser) error {
				if err := b.LoadHTML(html); err != nil {
					return err
				}
				_, err := b.ExecScript(script)
				return err
			}, browser.Options{ScriptOutput: os.Stderr})
			exitOn(err)
			prof = p
		}
	}

	opts := browser.Options{
		ScriptOutput: os.Stdout,
		Trace:        trace.NewRing(traceCap),
		Forensics:    true,
		Supervision:  supervise.Config{Policy: policy},
		Crossings:    store != nil,
	}
	var reg *telemetry.Registry
	if *metrics != "" || *metricsJSON != "" || *listen != "" || store != nil ||
		*latencyOut != "" || *traceJSON != "" {
		reg = telemetry.NewRegistry()
		opts.Telemetry = reg
	}
	// The request tracer rides whenever some consumer of its output is
	// configured. Browser requests all carry the same tenant label: the
	// embedder is single-tenant, but the traces still correlate gate spans
	// with supervisor recovery per request.
	var tracer *gatetrace.Tracer
	if *listen != "" || *latencyOut != "" || *traceJSON != "" {
		tracer = gatetrace.New(gatetrace.Config{
			Registry: reg, Capacity: retainedCap, TailThreshold: *tailThreshold})
		opts.Tracing = tracer
	}
	var rollout *profstore.Rollout
	if store != nil {
		store.SetTrace(opts.Trace)
		store.SetTelemetry(reg)
		rollout = profstore.NewRollout(store, *shadowFrac, reg)
	}

	b, err := browser.New(cfg, prof, opts)
	exitOn(err)

	ctlStop := startController(*adaptTarget, b.Prog.Crossings(), reg)

	var srv *obs.Server
	if *listen != "" {
		srv, err = obs.ListenAndServe(*listen, obs.ServerConfig{
			Registry: reg, Ring: opts.Trace, Profiles: store, Rollout: rollout, Traces: tracer})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkru-servo: observability server on %s\n", srv.URL())
	}

	crashOn := func(err error) {
		if err == nil {
			return
		}
		fmt.Fprintln(os.Stderr, "pkru-servo:", err)
		if rep, ok := b.Prog.Forensics().Capture(err); ok {
			_ = rep.WriteText(os.Stderr)
		}
		closeServer(srv)
		os.Exit(1)
	}
	crashOn(b.LoadHTML(html))

	// The request loop: each script execution is one supervised request
	// under its own trace context. A request the supervisor could not save
	// is dropped — logged with its typed compartment error — without
	// taking the service down; any other error is a genuine crash.
	lr := newLatencyRecorder()
	served, dropped := 0, 0
	loopStart := time.Now()
	for i := 1; i <= *requests; i++ {
		tc := tracer.Start("servo")
		b.Prog.Main().SetTraceContext(tc)
		reqStart := time.Now()
		result, err := b.ExecScript(script)
		reqLat := time.Since(reqStart)
		b.Prog.Main().SetTraceContext(nil)
		tc.Finish()
		var cerr *supervise.CompartmentError
		if errors.As(err, &cerr) {
			dropped++
			fmt.Fprintf(os.Stderr, "pkru-servo: request %d/%d dropped (%s): %v\n", i, *requests, cerr.Outcome, cerr.Err)
			continue
		}
		crashOn(err)
		served++
		lr.record("servo", reqLat)
		fmt.Printf("script result: %g\n", result)
	}
	elapsed := time.Since(loopStart)
	stopController(ctlStop)
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: crash averted: served %d/%d request(s), dropped %d under policy %s\n",
			served, *requests, dropped, policy)
	}

	if store != nil {
		runProfilePlane(b, store, rollout, cfg, *shadowFrac, *requests, html, script, policy, reg)
		exitOn(store.SaveFile(*profileStore))
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store saved to %s (%d generation(s), active %d)\n",
			*profileStore, store.Len(), store.ActiveSeq())
	}

	st := b.Stats()
	fmt.Printf("config=%v transitions=%d dom-ops=%d sites=%d shared-sites=%d %%MU=%.2f%%\n",
		cfg, st.Transitions, st.DOMOps, st.TotalSites, st.UntrustedSites, 100*st.UntrustedShare)

	if reg != nil {
		if *metrics != "" {
			writeTo(*metrics, reg.WritePrometheus)
		}
		if *metricsJSON != "" {
			writeTo(*metricsJSON, reg.Snapshot().WriteJSON)
		}
	}
	if *latencyOut != "" {
		writeLatencyReport(*latencyOut, latencyReport{
			Schema: benchSchema, Experiment: "gatetrace", Mode: "browser",
			Policy: policy.String(), Requests: served + dropped, Dropped: dropped,
		}, lr, elapsed)
	}
	if *traceJSON != "" {
		writeTo(*traceJSON, tracer.WriteChromeTrace)
	}

	if cfg == core.Profiling && *profileOut != "" {
		p, err := b.Prog.RecordedProfile()
		exitOn(err)
		data, err := json.MarshalIndent(p, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(*profileOut, data, 0o644))
		fmt.Printf("profile with %d shared sites written to %s\n", p.Len(), *profileOut)
	}
	if *traceOut != "" {
		writeTo(*traceOut, func(w io.Writer) error { opts.Trace.Dump(w); return nil })
	}
	closeServer(srv)
}

// domainRunConfig carries the flag subset the -domains workload consumes.
type domainRunConfig struct {
	n, workers, cycles int
	listen             string
	metrics            string
	metricsJSON        string
	recoverName        string
	latencyOut         string
	traceJSON          string
	traceOut           string
	tailThreshold      time.Duration
	fault              workload.FaultSpec
	adaptTarget        time.Duration
	sampleInterval     int
	hostile            string
	churn              bool
	probeAfter         time.Duration
}

// tenantsView is the /tenants.json payload: per-tenant breaker state
// beside per-pool quarantine epochs, the two halves of the resilience
// story an operator wants on one page.
type tenantsView struct {
	Breakers []resilience.TenantState `json:"breakers"`
	Epochs   map[string]uint64        `json:"epochs"`
}

// runDomains drives the multi-tenant domain workload: n logical domains
// multiplexed onto the hardware key slots, each fronted by an untrusted
// ffi library bound to the tenant's compartment, called concurrently by
// worker threads while a churn loop removes and re-adds tenants
// underneath them. Every request crosses a domain call gate — the
// audited activate-and-install path — under a request-scoped trace
// context, so gate latency, faults, recovery actions and the evictions a
// request triggers all land on one per-tenant trace. Cross-tenant probes
// must deny; churn must recycle both key slots and pool regions. The
// virtual-key telemetry, the per-domain gate-latency histograms and
// /trace.json + /domains.json are live on -listen for the duration.
func runDomains(o domainRunConfig) {
	if o.workers < 1 {
		o.workers = 1
	}
	policy, err := supervise.ParsePolicy(o.recoverName)
	exitOn(err)
	space := vm.NewSpace()
	m, err := domains.NewManager(space)
	exitOn(err)

	reg := telemetry.NewRegistry()
	m.SetTelemetry(reg)
	ring := trace.NewRing(traceCap)
	tracer := gatetrace.New(gatetrace.Config{
		Registry: reg, Capacity: retainedCap, TailThreshold: o.tailThreshold})
	m.SetTracing(tracer)

	entries := reg.Counter("pkruservo_domain_entries_total", "Domain requests completed by the tenant workload.")
	reads := reg.Counter("pkruservo_domain_reads_total", "In-domain reads of the tenant's own pool that succeeded.")
	denied := reg.Counter("pkruservo_domain_denied_total", "Cross-tenant probes correctly denied by the hardware keys.")
	leaks := reg.Counter("pkruservo_domain_leaks_total", "Cross-tenant probes that wrongly succeeded (must stay 0).")
	churned := reg.Counter("pkruservo_domain_churn_total", "Tenants removed and re-added while the workload ran.")
	droppedReqs := reg.Counter("pkruservo_domain_dropped_total", "Requests the recovery policy could not save.")
	refused := reg.Counter("pkruservo_domain_refused_total", "Requests refused at the gate because churn freed the tenant's key mid-flight.")
	shedReqs := reg.Counter("pkruservo_domain_shed_total", "Requests shed at admission by an open tenant breaker, never gated.")
	breaches := reg.Counter("pkruservo_hostile_breach_total", "Hostile payloads that reached their goal (must stay 0).")

	// The ffi runtime over the manager's allocator: tenant libraries are
	// untrusted and domain-bound, so every call into one gates through the
	// vkey table with the tenant's rights.
	ffiReg := ffi.NewRegistry()
	rt := ffi.NewRuntime(ffiReg, m.Allocator(), nil, ffi.GatesOn)
	rt.SetTelemetry(reg)
	rt.SetTrace(ring)
	sampler := profstore.NewSampler(profstore.SamplerConfig{
		Interval: o.sampleInterval, Telemetry: reg, Ring: ring})
	rt.SetCrossingSink(sampler)
	sup := supervise.New(supervise.Config{Policy: policy},
		supervise.Deps{Alloc: m.Allocator(), Ring: ring, Telemetry: reg})

	// The admission-control tier: one circuit breaker per tenant, between
	// the request loop and the gates. A tenant whose compartment keeps
	// faulting is shed here — typed refusal, no gate entry, no recovery
	// budget spent — while every other tenant keeps its throughput.
	breakers := resilience.NewGroup(resilience.Config{ProbeAfter: o.probeAfter})
	breakers.SetTelemetry(reg)

	ctlStop := startController(o.adaptTarget, sampler, reg)

	var srv *obs.Server
	if o.listen != "" {
		srv, err = obs.ListenAndServe(o.listen, obs.ServerConfig{
			Registry: reg, Ring: ring, Traces: tracer,
			Domains: func() any { return m.Occupancy() },
			Tenants: func() any {
				return tenantsView{Breakers: breakers.Snapshot(), Epochs: m.Allocator().DomainEpochs()}
			}})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkru-servo: observability server on %s\n", srv.URL())
	}

	// A trusted secret the fault injector touches from inside a domain:
	// the pkey fault every Nth request deliberately takes, for the
	// supervisor to answer and the trace to retain.
	setup := vm.NewThread(space, nil) // trusted: PermitAll
	secret, err := m.AllocTrusted(64)
	exitOn(err)
	exitOn(setup.Store64(secret, 0xfeed))

	// Tenant table: each tenant's current buffer address, swapped atomically
	// under its lock when churn recreates the pool. Workers racing a churn
	// see either address; a stale one simply faults (a denied probe), which
	// is the safe outcome.
	name := func(i int) string { return fmt.Sprintf("tenant%03d", i) }
	type tenant struct {
		mu  sync.Mutex
		buf vm.Addr
	}
	tenants := make([]*tenant, o.n)
	// work is every tenant library's single entry point. It runs with the
	// tenant's domain rights: its own pool readable, every other tenant's
	// pool and the trusted heap denied. args: own buffer, probe address,
	// secret address, inject flag.
	work := func(t *ffi.Thread, args []uint64) ([]uint64, error) {
		own, probe, secretAddr, inject := args[0], args[1], args[2], args[3]
		v, err := t.Load64(vm.Addr(own))
		if err == nil {
			reads.Inc()
		}
		if probe != own {
			if _, perr := t.Load64(vm.Addr(probe)); perr != nil {
				denied.Inc()
			} else {
				leaks.Inc()
			}
		}
		if inject != 0 {
			// Deliberate compartment failure: trusted memory from inside
			// the domain. The fault propagates out through the gate (which
			// self-unwinds) to the supervisor's recovery point.
			if _, ferr := t.Load64(vm.Addr(secretAddr)); ferr != nil {
				return nil, ferr
			}
		}
		return []uint64{v}, err
	}
	// hostileWork is the entry point a compromised tenant's library runs:
	// one attack payload per request, rotated deterministically by the
	// tenant-local sequence number. Every payload must die with a PKUERR
	// inside the tenant's own compartment; one that reaches its goal is an
	// isolation breach. args: payload index, secret address, victim address.
	payloads := attack.TenantPayloads()
	hostileWork := func(t *ffi.Thread, args []uint64) ([]uint64, error) {
		idx, secretAddr, victim := args[0], args[1], args[2]
		p := payloads[idx%uint64(len(payloads))]
		breached, err := p.Run(t, attack.PayloadTargets{
			Secret: vm.Addr(secretAddr), Victim: vm.Addr(victim)})
		if err != nil {
			return nil, err
		}
		if breached {
			breaches.Inc()
			fmt.Fprintf(os.Stderr, "pkru-servo: HOSTILE BREACH: payload %s (%s) reached its goal\n", p.Name, p.Class)
		}
		return []uint64{0}, nil
	}
	addTenant := func(i int) error {
		d, err := m.AddDomain(name(i))
		if err != nil {
			return err
		}
		buf, err := m.Alloc(d, 64)
		if err != nil {
			return err
		}
		if err := setup.Store64(buf, uint64(i)); err != nil {
			return err
		}
		lib, err := ffiReg.Library(name(i), ffi.Untrusted)
		if err != nil {
			return err
		}
		lib.Define("work", work)
		lib.Define("hostile", hostileWork)
		m.BindLibrary(rt, name(i), d)
		tenants[i].mu.Lock()
		tenants[i].buf = buf
		tenants[i].mu.Unlock()
		return nil
	}
	bufOf := func(i int) vm.Addr {
		tenants[i].mu.Lock()
		defer tenants[i].mu.Unlock()
		return tenants[i].buf
	}
	for i := 0; i < o.n; i++ {
		tenants[i] = &tenant{}
		exitOn(addTenant(i))
	}

	lr := newLatencyRecorder()
	var reqSeq atomic.Uint64
	perSeq := make([]atomic.Uint64, o.n) // tenant-local request sequence
	okBy := make([]atomic.Uint64, o.n)   // per-tenant successes, for the verdict
	dropBy := make([]atomic.Uint64, o.n) // per-tenant drops, for the verdict

	// setPins pins (or unpins) every tenant's slot except the flapping
	// one: while a breaker is open or half-open probing, the healthy,
	// latency-critical tenants keep their hardware slots instead of losing
	// them to the probe traffic's activations. Best-effort — a tenant
	// churned away mid-loop just skips.
	setPins := func(except string, on bool) {
		for j := 0; j < o.n; j++ {
			if name(j) == except {
				continue
			}
			if on {
				_ = m.Pin(name(j))
			} else {
				_ = m.Unpin(name(j))
			}
		}
	}
	// mark publishes a breaker transition: a gatetrace instant on the
	// request's trace (flagging it for retention) and the pinning
	// side-effect — open pins the healthy tenants, closed releases them.
	mark := func(tc *gatetrace.Context, tenant string, tr *resilience.Transition) {
		if tr == nil {
			return
		}
		tc.MarkBreaker(tr.To.String(), tenant, tr.Reason)
		switch tr.To {
		case resilience.Open:
			setPins(tenant, true)
		case resilience.Closed:
			setPins(tenant, false)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.NewThread()
			if o.hostile != "" {
				// The payload roster includes rogue WRPKRUs; arm the
				// per-thread guard so the defense under test is on.
				th.VM.SetPKRUGuard(true)
			}
			for c := 0; c < o.cycles; c++ {
				i := (w + c) % o.n
				tenantName := name(i)
				if _, ok := m.Domain(tenantName); !ok {
					continue // churned away between pick and lookup
				}
				seq := reqSeq.Add(1)
				tseq := int(perSeq[i].Add(1))
				injSeq := int(seq)
				if o.fault.Tenant != "" {
					injSeq = tseq // tenant-scoped spec counts the tenant's own stream
				}
				inject := o.fault.Hits(tenantName, injSeq)
				// One request: its own trace context, attached to the
				// thread for gate spans and bound to the rights register
				// for eviction attribution.
				tc := tracer.Start(tenantName)
				// Admission: an open breaker sheds the request here —
				// counted, typed, never gated, no latency sample.
				tr, aerr := breakers.Allow(tenantName)
				if aerr != nil {
					shedReqs.Inc()
					tc.Finish()
					continue
				}
				mark(tc, tenantName, tr)
				th.SetTraceContext(tc)
				tracer.Bind(th.VM, tc)
				qBefore := sup.DomainQuarantines(tenantName)
				reqStart := time.Now()
				var err error
				if o.hostile == tenantName {
					err = sup.Shield(th, tenantName+".hostile", func() error {
						_, herr := th.Call(tenantName, "hostile",
							uint64(tseq-1), uint64(secret), uint64(bufOf((i+1)%o.n)))
						return herr
					})
				} else {
					err = sup.Shield(th, tenantName+".work", func() error {
						inj := uint64(0)
						if inject {
							inj, inject = 1, false // fault once; the retry succeeds
						}
						_, werr := th.Call(tenantName, "work",
							uint64(bufOf(i)), uint64(bufOf((i+1)%o.n)), uint64(secret), inj)
						return werr
					})
				}
				reqLat := time.Since(reqStart)
				tracer.Unbind(th.VM)
				th.SetTraceContext(nil)
				// Recovery actions the supervisor spent on this tenant burn
				// its breaker budget, opening it even when the request was
				// ultimately saved.
				if burned := sup.DomainQuarantines(tenantName) - qBefore; burned > 0 {
					mark(tc, tenantName, breakers.RecordBurn(tenantName, burned))
				}
				var cerr *supervise.CompartmentError
				var fault *vm.Fault
				switch {
				case err == nil:
					entries.Inc()
					okBy[i].Add(1)
					lr.record(tenantName, reqLat)
					mark(tc, tenantName, breakers.RecordSuccess(tenantName))
				case errors.As(err, &cerr), errors.As(err, &fault):
					// The policy gave the request up (or, under abort, the
					// injected fault surfaced raw). Dropped, not fatal.
					droppedReqs.Inc()
					dropBy[i].Add(1)
					mark(tc, tenantName, breakers.RecordFault(tenantName))
				default:
					// Churn freed the tenant's key between lookup and gate
					// entry; the gate failed closed without running the body.
					// Not the tenant's fault: the breaker does not charge it.
					refused.Inc()
				}
				tc.Finish()
			}
		}(w)
	}

	// Churn loop: while the workers run, rotate tenants out and back in so
	// key recycling and pool scrubbing happen under live concurrent entry.
	// -churn=false skips it for deterministic rehearsals (the golden
	// resilience transcript depends on a fixed request schedule).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	victim := 0
churn:
	for o.churn {
		select {
		case <-done:
			break churn
		case <-time.After(50 * time.Microsecond):
		}
		i := victim % o.n
		victim++
		// Touch the victim first so it holds a hardware slot when removed:
		// removal of an active tenant is the interesting case, exercising
		// slot recycling and bound-thread revocation rather than just
		// discarding a parked key.
		if d, ok := m.Domain(name(i)); ok {
			if restore, err := m.Enter(setup, d); err == nil {
				_ = restore()
			}
		}
		if err := m.RemoveDomain(name(i)); err != nil {
			continue
		}
		if err := addTenant(i); err != nil {
			fmt.Fprintf(os.Stderr, "pkru-servo: tenant re-add: %v\n", err)
			os.Exit(1)
		}
		churned.Inc()
	}
	<-done
	elapsed := time.Since(start)
	stopController(ctlStop)

	st := m.Table().Stats()
	ts := tracer.Stats()
	if leaks.Value() > 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: ISOLATION FAILURE: %d cross-tenant probe(s) succeeded\n", leaks.Value())
	}
	fmt.Printf("domains=%d slots=%d workers=%d requests=%d reads=%d denied-probes=%d leaks=%d dropped=%d refused=%d shed=%d churn=%d elapsed=%v\n",
		o.n, st.Slots, o.workers, entries.Value(), reads.Value(), denied.Value(), leaks.Value(),
		droppedReqs.Value(), refused.Value(), shedReqs.Value(), churned.Value(), elapsed.Round(time.Millisecond))
	fmt.Printf("vkeys: logical=%d active=%d parked=%d activations=%d slot-misses=%d evictions=%d recycled=%d invalidations=%d\n",
		st.Logical, st.Active, st.Parked, st.Activations, st.SlotMisses, st.Evictions, st.Recycled, st.Invalidations)
	fmt.Printf("traces: started=%d finished=%d retained=%d dropped=%d sampler-interval=%d\n",
		ts.Started, ts.Finished, ts.Retained, ts.Dropped, sampler.Interval())

	// The containment verdict: with a hostile tenant in play, prove the
	// blast radius stayed inside that tenant. Its breaker must have
	// tripped, only its pool's epoch may have bumped (under a quarantining
	// policy), and every healthy tenant must have kept a 100% success
	// rate. A breach exits non-zero — CI runs this as a gate.
	contained := true
	if o.hostile != "" {
		hi := -1
		for j := 0; j < o.n; j++ {
			if name(j) == o.hostile {
				hi = j
				break
			}
		}
		if hi < 0 {
			fmt.Fprintf(os.Stderr, "pkru-servo: -hostile %s names no tenant (have tenant000..%s)\n", o.hostile, name(o.n-1))
			os.Exit(2)
		}
		// Epoch accounting comes from the supervisor's per-domain
		// quarantine counters, not the pools' live epochs: the churn loop
		// recycles pools (resetting their epoch to zero), which would
		// erase a quarantine history the verdict needs — cumulatively for
		// the hostile tenant, and at all for a healthy one.
		healthyN, healthyBumped, healthyOK, healthyDropped := 0, 0, uint64(0), uint64(0)
		for j := 0; j < o.n; j++ {
			if j == hi || name(j) == o.fault.Tenant {
				// The hostile tenant and a deliberately fault-injected
				// tenant are not "healthy": their drops and epoch bumps
				// are the experiment, not collateral damage.
				continue
			}
			healthyN++
			if sup.DomainQuarantines(name(j)) > 0 {
				healthyBumped++
			}
			healthyOK += okBy[j].Load()
			healthyDropped += dropBy[j].Load()
		}
		var trips uint64
		for _, tsn := range breakers.Snapshot() {
			if tsn.Tenant == o.hostile {
				trips = tsn.Trips
			}
		}
		bstate := breakers.State(o.hostile)
		fmt.Printf("resilience: hostile=%s requests=%d faulted=%d shed=%d breaker=%s trips=%d\n",
			o.hostile, perSeq[hi].Load(), dropBy[hi].Load(), breakers.Shed(o.hostile), bstate, trips)
		hostileEpochs := sup.DomainQuarantines(o.hostile)
		fmt.Printf("resilience: hostile-epochs=%d healthy-pools-bumped=%d\n",
			hostileEpochs, healthyBumped)
		fmt.Printf("resilience: healthy tenants=%d ok=%d dropped=%d leaks=%d breaches=%d\n",
			healthyN, healthyOK, healthyDropped, leaks.Value(), breaches.Value())
		// Abort and retry never quarantine, so only the quarantining
		// policies owe an epoch bump for containment.
		wantEpochs := policy == supervise.Quarantine || policy == supervise.Heal
		contained = bstate != resilience.Closed &&
			(!wantEpochs || hostileEpochs > 0) &&
			healthyBumped == 0 && healthyDropped == 0 &&
			leaks.Value() == 0 && breaches.Value() == 0
		verdict := "CONTAINED"
		if !contained {
			verdict = "BREACH"
		}
		fmt.Printf("resilience: verdict %s\n", verdict)
	}

	if o.latencyOut != "" {
		writeLatencyReport(o.latencyOut, latencyReport{
			Schema: benchSchema, Experiment: "gatetrace", Mode: "domains",
			Policy: policy.String(), Domains: o.n, Workers: o.workers,
			Requests: int(entries.Value() + droppedReqs.Value()),
			Dropped:  int(droppedReqs.Value()),
			Shed:     int(shedReqs.Value()),
		}, lr, elapsed)
	}
	if o.traceJSON != "" {
		writeTo(o.traceJSON, tracer.WriteChromeTrace)
	}
	if o.traceOut != "" {
		writeTo(o.traceOut, func(w io.Writer) error { ring.Dump(w); return nil })
	}
	if o.metrics != "" {
		writeTo(o.metrics, reg.WritePrometheus)
	}
	if o.metricsJSON != "" {
		writeTo(o.metricsJSON, reg.Snapshot().WriteJSON)
	}
	closeServer(srv)
	if leaks.Value() > 0 || !contained {
		os.Exit(1)
	}
}

// startController launches the adaptive sampling controller when a
// target is set and a sampler exists, returning the stop channel (nil
// when not started). The controller steers the crossing sampler's
// interval around the live per-domain gate-latency p99.
func startController(target time.Duration, sampler *profstore.Sampler, reg *telemetry.Registry) chan struct{} {
	if target <= 0 || sampler == nil || reg == nil {
		return nil
	}
	ctl := &gatetrace.Controller{Sampler: sampler, Registry: reg, Target: target}
	stop := make(chan struct{})
	go ctl.Run(stop, 100*time.Millisecond, func(r gatetrace.Retuning) {
		fmt.Fprintf(os.Stderr, "pkru-servo: sampler retuned: interval %d -> %d (gate p99 %v over %d obs)\n",
			r.Old, r.New, r.P99, r.Count)
	})
	return stop
}

func stopController(stop chan struct{}) {
	if stop != nil {
		close(stop)
	}
}

// benchSchema versions the -latency-out report, like the other BENCH_*
// seeds in the repo root.
const benchSchema = 1

// latencyRecorder accumulates per-tenant request latencies for the
// -latency-out report. Exact samples rather than histogram buckets: the
// report is written once at exit, so there is no reason to pay the log2
// buckets' quantization in an offline artifact.
type latencyRecorder struct {
	mu       sync.Mutex
	byTenant map[string][]time.Duration
}

func newLatencyRecorder() *latencyRecorder {
	return &latencyRecorder{byTenant: make(map[string][]time.Duration)}
}

func (lr *latencyRecorder) record(tenant string, d time.Duration) {
	lr.mu.Lock()
	lr.byTenant[tenant] = append(lr.byTenant[tenant], d)
	lr.mu.Unlock()
}

// tenantLatency is one tenant's row in the latency report.
type tenantLatency struct {
	Tenant        string  `json:"tenant"`
	Requests      int     `json:"requests"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// latencyReport is the -latency-out payload (see BENCH_gatetrace.json).
type latencyReport struct {
	Schema        int             `json:"schema"`
	Experiment    string          `json:"experiment"`
	Mode          string          `json:"mode"`
	Policy        string          `json:"policy"`
	Domains       int             `json:"domains,omitempty"`
	Workers       int             `json:"workers,omitempty"`
	Requests      int             `json:"requests"`
	Dropped       int             `json:"dropped"`
	Shed          int             `json:"shed,omitempty"`
	ElapsedS      float64         `json:"elapsed_s"`
	ThroughputRPS float64         `json:"throughput_rps"`
	Tenants       []tenantLatency `json:"tenants"`
}

// quantile reads the q-quantile from an ascending-sorted sample set by
// nearest-rank; exact for the sample, no interpolation.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeLatencyReport fills the per-tenant rows from the recorder and
// writes the schema-versioned JSON.
func writeLatencyReport(path string, rep latencyReport, lr *latencyRecorder, elapsed time.Duration) {
	rep.ElapsedS = elapsed.Seconds()
	if rep.ElapsedS > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / rep.ElapsedS
	}
	lr.mu.Lock()
	tenants := make([]string, 0, len(lr.byTenant))
	for t := range lr.byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	rep.Tenants = make([]tenantLatency, 0, len(tenants))
	for _, t := range tenants {
		samples := lr.byTenant[t]
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		row := tenantLatency{
			Tenant:   t,
			Requests: len(samples),
			P50Ns:    quantile(samples, 0.50).Nanoseconds(),
			P95Ns:    quantile(samples, 0.95).Nanoseconds(),
			P99Ns:    quantile(samples, 0.99).Nanoseconds(),
		}
		if rep.ElapsedS > 0 {
			row.ThroughputRPS = float64(len(samples)) / rep.ElapsedS
		}
		rep.Tenants = append(rep.Tenants, row)
	}
	lr.mu.Unlock()
	writeTo(path, func(w io.Writer) error {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	})
	fmt.Fprintf(os.Stderr, "pkru-servo: latency report (%d tenant(s)) written to %s\n", len(rep.Tenants), path)
}

// runProfilePlane closes the profiling loop after the serving phase: live
// crossing observations feed re-tighten bookkeeping, the heal delta (if
// any) is committed as a candidate generation, and — with a shadow
// fraction — the candidate is staged by replaying the request workload
// across a control browser (active generation) and a shadow browser
// (candidate), promoting only if the shadow arm's fault rate does not
// regress past control's.
func runProfilePlane(b *browser.Browser, store *profstore.Store, rollout *profstore.Rollout,
	cfg core.BuildConfig, frac float64, requests int, html, script string,
	policy supervise.Policy, reg *telemetry.Registry) {

	if cs := b.Prog.Crossings(); cs.Sampled() > 0 {
		cs.FeedStore(store)
		fmt.Fprintf(os.Stderr, "pkru-servo: crossings: %d sampled, %d allocation site(s) attributed\n",
			cs.Sampled(), len(cs.Sites()))
	}
	delta := b.Prog.Supervisor().Delta()
	if delta.Len() == 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store: no heal delta; generation %d stands\n", store.ActiveSeq())
		return
	}
	cand := store.Commit(delta, "heal")
	fmt.Fprintf(os.Stderr, "pkru-servo: profile store: committed candidate generation %d (source heal, %d site(s))\n",
		cand.Seq, cand.Sites.Len())
	if frac <= 0 {
		fmt.Fprintf(os.Stderr, "pkru-servo: profile store: -shadow-frac 0; candidate %d held for offline promotion\n", cand.Seq)
		return
	}

	// Staged comparison: fresh browsers per arm so the control arm really
	// runs the pre-heal active generation (the serving browser has already
	// healed itself and would mask the regression being tested for).
	rollout.SetCandidate(cand.Seq)
	newArm := func(p *profile.Profile) *browser.Browser {
		ab, err := browser.New(cfg, p, browser.Options{
			ScriptOutput: io.Discard,
			Forensics:    true,
			Supervision:  supervise.Config{Policy: policy},
			Telemetry:    reg,
		})
		exitOn(err)
		exitOn(ab.LoadHTML(html))
		return ab
	}
	arms := map[string]*browser.Browser{
		profstore.ArmControl: newArm(store.Active().Sites),
		profstore.ArmShadow:  newArm(cand.Sites),
	}
	for i := 0; i < requests; i++ {
		arm := rollout.Assign()
		ab := arms[arm]
		before := len(ab.Prog.Supervisor().Events())
		_, err := ab.ExecScript(script)
		fault := false
		var cerr *supervise.CompartmentError
		if errors.As(err, &cerr) {
			fault = true
		} else {
			exitOn(err)
		}
		if len(ab.Prog.Supervisor().Events()) > before {
			fault = true
		}
		rollout.Record(arm, fault)
	}
	dec, err := rollout.Decide()
	exitOn(err)
	verdict := "rolled back"
	if dec.Promote {
		verdict = "promoted"
	}
	fmt.Fprintf(os.Stderr, "pkru-servo: profile rollout: candidate %d %s: %s (control %d/%d faulted, shadow %d/%d)\n",
		dec.Candidate, verdict, dec.Reason,
		dec.Control.Faults, dec.Control.Requests, dec.Shadow.Faults, dec.Shadow.Requests)
}

// writeTo writes via f to path, with "-" meaning stdout. File output is
// buffered so a failed export never leaves a truncated file behind.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		exitOn(f(os.Stdout))
		return
	}
	var buf bytes.Buffer
	exitOn(f(&buf))
	exitOn(os.WriteFile(path, buf.Bytes(), 0o644))
}

// closeServer drains the observability server before exit (nil-safe).
func closeServer(srv *obs.Server) {
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pkru-servo: observability server:", err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-servo:", err)
		os.Exit(1)
	}
}
