// Command pkrusafe is the toolchain CLI over textual IR (.pkir) programs,
// exposing the paper's four-stage pipeline (§3.1) as subcommands:
//
//	pkrusafe build   prog.pkir                 validate + instrument, print IR
//	pkrusafe profile prog.pkir -o prog.prof    profiling run, write profile
//	pkrusafe analyze prog.pkir -o prog.prof    static analysis, write profile
//	pkrusafe run     prog.pkir [-profile p]    enforced (mpk) run
//	pkrusafe exec    prog.pkir -config base    run under any configuration
//
// The instrumented IR printed by `build` shows the AllocIds, gate marks
// and (with -profile) the alloc→ualloc rewrites the enforcement build
// applies.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/interp"
	"repro/internal/pkir"
	"repro/internal/profile"
	"repro/internal/static"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profPath := fs.String("profile", "", "profile JSON to apply (run/exec/build)")
	outPath := fs.String("o", "", "output path (profile subcommand)")
	entry := fs.String("entry", "main", "entry function")
	cfgName := fs.String("config", "mpk", "exec only: base|alloc|mpk|profiling")
	traceN := fs.Int("trace", 0, "run/exec: keep the last N runtime events and dump them on crash")
	exitOn(fs.Parse(os.Args[3:]))

	src, err := os.ReadFile(path)
	exitOn(err)
	mod, err := pkir.Parse(string(src))
	exitOn(err)

	prof := profile.New()
	if *profPath != "" {
		data, err := os.ReadFile(*profPath)
		exitOn(err)
		exitOn(json.Unmarshal(data, prof))
	}

	switch cmd {
	case "build":
		var applied *profile.Profile
		if *profPath != "" {
			applied = prof
		}
		st, err := compile.Pipeline(mod, applied)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkrusafe: %d allocation sites, %d gates, %d address-taken, %d sites moved to MU\n",
			st.AllocSites, st.Gates, st.AddressTaken, st.RewrittenMU)
		fmt.Print(pkir.Format(mod))

	case "profile":
		_, err := compile.Pipeline(mod, nil)
		exitOn(err)
		prog, err := core.NewProgram(ffi.NewRegistry(), core.Profiling, nil)
		exitOn(err)
		m, err := interp.New(mod, prog, interp.Options{Output: os.Stdout})
		exitOn(err)
		res, err := m.Run(*entry)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkrusafe: profiling run returned %v\n", res)
		recorded, err := prog.RecordedProfile()
		exitOn(err)
		data, err := json.MarshalIndent(recorded, "", "  ")
		exitOn(err)
		out := *outPath
		if out == "" {
			out = path + ".prof"
		}
		exitOn(os.WriteFile(out, data, 0o644))
		fmt.Fprintf(os.Stderr, "pkrusafe: %d shared allocation sites written to %s\n", recorded.Len(), out)

	case "analyze":
		_, err := compile.Pipeline(mod, nil)
		exitOn(err)
		recorded, st, err := static.Analyze(mod)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkrusafe: static analysis converged in %d iteration(s): %d of %d sites may escape\n",
			st.Iterations, st.EscapedSites, st.TotalSites)
		data, err := json.MarshalIndent(recorded, "", "  ")
		exitOn(err)
		out := *outPath
		if out == "" {
			out = path + ".prof"
		}
		exitOn(os.WriteFile(out, data, 0o644))
		fmt.Fprintf(os.Stderr, "pkrusafe: profile written to %s\n", out)

	case "run", "exec":
		cfg := core.MPK
		if cmd == "exec" {
			switch *cfgName {
			case "base":
				cfg = core.Base
			case "alloc":
				cfg = core.Alloc
			case "mpk":
				cfg = core.MPK
			case "profiling":
				cfg = core.Profiling
			default:
				exitOn(fmt.Errorf("unknown config %q", *cfgName))
			}
		}
		var applied *profile.Profile
		if cfg == core.MPK || cfg == core.Alloc {
			applied = prof
		}
		_, err := compile.Pipeline(mod, applied)
		exitOn(err)
		var progProf *profile.Profile
		if cfg == core.MPK || cfg == core.Alloc {
			progProf = prof
		}
		var opts core.Options
		var ring *trace.Ring
		if *traceN > 0 {
			ring = trace.NewRing(*traceN)
			opts.Trace = ring
		}
		prog, err := core.NewProgram(ffi.NewRegistry(), cfg, progProf, opts)
		exitOn(err)
		m, err := interp.New(mod, prog, interp.Options{Output: os.Stdout})
		exitOn(err)
		res, err := m.Run(*entry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pkrusafe: program crashed: %v\n", err)
			if ring != nil {
				fmt.Fprintf(os.Stderr, "pkrusafe: last %d runtime event(s) before death:\n", ring.Len())
				ring.Dump(os.Stderr)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pkrusafe: %v run returned %v (%d transitions)\n", cfg, res, prog.Transitions())

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pkrusafe build   <prog.pkir> [-profile p.prof]
  pkrusafe profile <prog.pkir> [-o p.prof] [-entry main]
  pkrusafe analyze <prog.pkir> [-o p.prof]
  pkrusafe run     <prog.pkir> [-profile p.prof] [-entry main]
  pkrusafe exec    <prog.pkir> -config base|alloc|mpk|profiling [-profile p.prof]`)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkrusafe:", err)
		os.Exit(1)
	}
}
