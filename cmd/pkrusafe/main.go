// Command pkrusafe is the toolchain CLI over textual IR (.pkir) programs,
// exposing the paper's four-stage pipeline (§3.1) as subcommands:
//
//	pkrusafe build   prog.pkir                 validate + instrument, print IR
//	pkrusafe profile prog.pkir -o prog.prof    profiling run, write profile
//	pkrusafe analyze prog.pkir -o prog.prof    static analysis, write profile
//	pkrusafe run     prog.pkir [-profile p]    enforced (mpk) run
//	pkrusafe exec    prog.pkir -config base    run under any configuration
//	pkrusafe stats   prog.pkir [-profile p]    run and print a telemetry table
//	pkrusafe trace   prog.pkir [-o t.json]     enforced run, write a Chrome trace timeline
//	pkrusafe domains N [-json]                 N-tenant virtual-key drill + stats
//
// The instrumented IR printed by `build` shows the AllocIds, gate marks
// and (with -profile) the alloc→ualloc rewrites the enforcement build
// applies. run/exec accept -metrics / -metrics-json to export the run's
// telemetry (gate latencies, per-site allocations, fault counts) in
// Prometheus text or JSON form; "-" writes to stdout. Metrics are written
// even when the program crashes, so a missed-profile fault still leaves
// its counters behind for debugging.
//
// -listen serves the live observability endpoints (/metrics,
// /snapshot.json, /trace, /trace.json, /healthz, /debug/pprof) while the
// program runs; run/exec/stats runs under -listen carry a request-scoped
// trace context, so /trace.json serves the run's retained gate timeline.
// The trace subcommand is the file-output form: it executes the program
// under the mpk configuration with every trace retained and writes the
// timeline as Chrome trace_event JSON (chrome://tracing, Perfetto); see
// docs/tracing.md.
// When an enforced run dies on an MPK violation, a forensic crash report
// — decoded PKRU bits, the faulting page's protection key, the owning
// allocation site and the trailing trace events — is printed to stderr,
// and -crash-json additionally writes it as schema-versioned JSON. See
// docs/observability.md.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/compile"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/ffi"
	"repro/internal/gatetrace"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/pkir"
	"repro/internal/profile"
	"repro/internal/static"
	"repro/internal/supervise"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// options collects every flag target; each command's flag set registers
// only the flags that command accepts.
type options struct {
	profPath    string
	outPath     string
	entry       string
	cfgName     string
	traceN      int
	metrics     string
	metricsJSON string
	listen      string
	crashJSON   string
	jsonOut     bool
	recoverName string
	healOut     string
}

func (o *options) profileFlag(fs *flag.FlagSet) {
	fs.StringVar(&o.profPath, "profile", "", "profile JSON to apply")
}

func (o *options) entryFlag(fs *flag.FlagSet) {
	fs.StringVar(&o.entry, "entry", "main", "entry function")
}

func (o *options) outFlag(fs *flag.FlagSet) {
	fs.StringVar(&o.outPath, "o", "", "output path (default: <prog.pkir>.prof)")
}

func (o *options) configFlag(fs *flag.FlagSet) {
	fs.StringVar(&o.cfgName, "config", "mpk", "build configuration: base|alloc|mpk|profiling")
}

func (o *options) runFlags(fs *flag.FlagSet) {
	o.profileFlag(fs)
	o.entryFlag(fs)
	fs.IntVar(&o.traceN, "trace", 0, "keep the last N runtime events and dump them on crash")
	fs.StringVar(&o.metrics, "metrics", "", `write Prometheus metrics to this path ("-" = stdout)`)
	fs.StringVar(&o.metricsJSON, "metrics-json", "", `write a JSON metrics snapshot to this path ("-" = stdout)`)
	fs.StringVar(&o.listen, "listen", "", "serve /metrics, /snapshot.json, /trace, /healthz and /debug/pprof on this address while running")
	fs.StringVar(&o.crashJSON, "crash-json", "", `write a JSON crash report to this path if the run dies on a fault ("-" = stdout)`)
	fs.StringVar(&o.recoverName, "recover", "abort",
		"compartment fault recovery policy: abort|retry|quarantine|heal")
	fs.StringVar(&o.healOut, "heal-out", "",
		`write the applied profile updated with healed sites to this path ("-" = stdout)`)
}

// command is one subcommand. The usage text is generated from this table
// and each command's flag set, so help cannot drift from the flags the
// code actually accepts.
type command struct {
	name     string
	synopsis string
	arg      string // positional argument name; "" = "<prog.pkir>"
	flags    func(o *options) *flag.FlagSet
	run      func(o *options, path string)
}

var commands = []command{
	{
		name:     "build",
		synopsis: "validate and instrument the module, print the IR",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("build")
			o.profileFlag(fs)
			return fs
		},
		run: cmdBuild,
	},
	{
		name:     "profile",
		synopsis: "profiling run; record shared allocation sites to a profile",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("profile")
			o.outFlag(fs)
			o.entryFlag(fs)
			return fs
		},
		run: cmdProfile,
	},
	{
		name:     "analyze",
		synopsis: "static escape analysis; write an equivalent profile",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("analyze")
			o.outFlag(fs)
			return fs
		},
		run: cmdAnalyze,
	},
	{
		name:     "run",
		synopsis: "enforced (mpk) run",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("run")
			o.runFlags(fs)
			return fs
		},
		run: func(o *options, path string) { execute(o, path, core.MPK, false) },
	},
	{
		name:     "exec",
		synopsis: "run under any build configuration",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("exec")
			o.configFlag(fs)
			o.runFlags(fs)
			return fs
		},
		run: func(o *options, path string) { execute(o, path, parseConfig(o.cfgName), false) },
	},
	{
		name:     "stats",
		synopsis: "run with telemetry and print the metrics as a table",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("stats")
			o.configFlag(fs)
			o.runFlags(fs)
			fs.BoolVar(&o.jsonOut, "json", false, "print the snapshot as JSON instead of a table")
			return fs
		},
		run: func(o *options, path string) { execute(o, path, parseConfig(o.cfgName), true) },
	},
	{
		name:     "trace",
		synopsis: "enforced run under full request tracing; write the Chrome trace_event timeline",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("trace")
			o.profileFlag(fs)
			o.entryFlag(fs)
			fs.StringVar(&o.outPath, "o", "", `timeline output path (default: <prog.pkir>.trace.json, "-" = stdout)`)
			fs.StringVar(&o.recoverName, "recover", "abort",
				"compartment fault recovery policy: abort|retry|quarantine|heal")
			return fs
		},
		run: cmdTrace,
	},
	{
		name:     "domains",
		synopsis: "drive <n> logical domains through the virtual-key drill, print multiplexing stats",
		arg:      "<n>",
		flags: func(o *options) *flag.FlagSet {
			fs := newFlagSet("domains")
			fs.BoolVar(&o.jsonOut, "json", false, "print the report as JSON instead of text")
			return fs
		},
		run: cmdDomains,
	},
}

func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	name, path := os.Args[1], os.Args[2]
	for i := range commands {
		c := &commands[i]
		if c.name != name {
			continue
		}
		o := &options{}
		fs := c.flags(o)
		exitOn(fs.Parse(os.Args[3:]))
		c.run(o, path)
		return
	}
	usage()
}

// usage renders the command table and each command's flag set.
func usage() {
	w := os.Stderr
	fmt.Fprintln(w, "usage: pkrusafe <command> <prog.pkir> [flags]")
	for i := range commands {
		c := &commands[i]
		arg := c.arg
		if arg == "" {
			arg = "<prog.pkir>"
		}
		fmt.Fprintf(w, "\n  pkrusafe %s %s\n        %s\n", c.name, arg, c.synopsis)
		fs := c.flags(&options{})
		fs.SetOutput(w)
		fs.PrintDefaults()
	}
	os.Exit(2)
}

func parseConfig(name string) core.BuildConfig {
	switch name {
	case "base":
		return core.Base
	case "alloc":
		return core.Alloc
	case "mpk":
		return core.MPK
	case "profiling":
		return core.Profiling
	}
	exitOn(fmt.Errorf("unknown config %q (want base|alloc|mpk|profiling)", name))
	panic("unreachable")
}

func loadModule(path string) *ir.Module {
	src, err := os.ReadFile(path)
	exitOn(err)
	mod, err := pkir.Parse(string(src))
	exitOn(err)
	return mod
}

func loadProfile(o *options) *profile.Profile {
	prof := profile.New()
	if o.profPath != "" {
		data, err := os.ReadFile(o.profPath)
		exitOn(err)
		exitOn(json.Unmarshal(data, prof))
	}
	return prof
}

func cmdBuild(o *options, path string) {
	mod := loadModule(path)
	var applied *profile.Profile
	if o.profPath != "" {
		applied = loadProfile(o)
	}
	st, err := compile.Pipeline(mod, applied)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "pkrusafe: %d allocation sites, %d gates, %d address-taken, %d sites moved to MU\n",
		st.AllocSites, st.Gates, st.AddressTaken, st.RewrittenMU)
	fmt.Print(pkir.Format(mod))
}

func cmdProfile(o *options, path string) {
	mod := loadModule(path)
	_, err := compile.Pipeline(mod, nil)
	exitOn(err)
	prog, err := core.NewProgram(ffi.NewRegistry(), core.Profiling, nil)
	exitOn(err)
	m, err := interp.New(mod, prog, interp.Options{Output: os.Stdout})
	exitOn(err)
	res, err := m.Run(o.entry)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "pkrusafe: profiling run returned %v\n", res)
	recorded, err := prog.RecordedProfile()
	exitOn(err)
	data, err := json.MarshalIndent(recorded, "", "  ")
	exitOn(err)
	out := o.outPath
	if out == "" {
		out = path + ".prof"
	}
	exitOn(os.WriteFile(out, data, 0o644))
	fmt.Fprintf(os.Stderr, "pkrusafe: %d shared allocation sites written to %s\n", recorded.Len(), out)
}

func cmdAnalyze(o *options, path string) {
	mod := loadModule(path)
	_, err := compile.Pipeline(mod, nil)
	exitOn(err)
	recorded, st, err := static.Analyze(mod)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "pkrusafe: static analysis converged in %d iteration(s): %d of %d sites may escape\n",
		st.Iterations, st.EscapedSites, st.TotalSites)
	data, err := json.MarshalIndent(recorded, "", "  ")
	exitOn(err)
	out := o.outPath
	if out == "" {
		out = path + ".prof"
	}
	exitOn(os.WriteFile(out, data, 0o644))
	fmt.Fprintf(os.Stderr, "pkrusafe: profile written to %s\n", out)
}

// execute runs the program under cfg. When table is set (the stats
// subcommand) the run always collects telemetry and prints it afterwards;
// otherwise telemetry is collected only when an export flag asks for it.
func execute(o *options, path string, cfg core.BuildConfig, table bool) {
	mod := loadModule(path)
	var applied *profile.Profile
	if cfg == core.MPK || cfg == core.Alloc {
		applied = loadProfile(o)
	}
	_, err := compile.Pipeline(mod, applied)
	exitOn(err)

	// The crash-report ring: always attached so a fatal fault carries its
	// trailing events even without -trace. An explicit -trace N sizes the
	// ring and additionally dumps it on crash, as before.
	ringCap := o.traceN
	if ringCap <= 0 {
		ringCap = defaultCrashRing
	}
	ring := trace.NewRing(ringCap)
	policy, err := supervise.ParsePolicy(o.recoverName)
	exitOn(err)
	// The crossing sampler rides every run: forward-gate arguments are
	// attributed to their allocation sites so the run can report what
	// actually crossed the boundary (and feed a profile store).
	opts := core.Options{Trace: ring, Forensics: true, Crossings: true,
		Supervision: supervise.Config{Policy: policy}}
	var reg *telemetry.Registry
	if table || o.metrics != "" || o.metricsJSON != "" || o.listen != "" {
		reg = telemetry.NewRegistry()
		opts.Telemetry = reg
	}
	// A served run is a traced run: the whole execution becomes one
	// retained request trace, so /trace.json has a timeline to offer.
	var tracer *gatetrace.Tracer
	if o.listen != "" {
		tracer = gatetrace.New(gatetrace.Config{Registry: reg, RetainAll: true})
		opts.Tracing = tracer
	}

	prog, err := core.NewProgram(ffi.NewRegistry(), cfg, applied, opts)
	exitOn(err)

	var srv *obs.Server
	if o.listen != "" {
		srv, err = obs.ListenAndServe(o.listen, obs.ServerConfig{Registry: reg, Ring: ring, Traces: tracer})
		exitOn(err)
		fmt.Fprintf(os.Stderr, "pkrusafe: observability server on %s\n", srv.URL())
	}

	m, err := interp.New(mod, prog, interp.Options{Output: os.Stdout})
	exitOn(err)
	tc := tracer.Start(o.entry)
	prog.Main().SetTraceContext(tc)
	res, runErr := m.Run(o.entry)
	prog.Main().SetTraceContext(nil)
	tc.Finish()

	// Telemetry is exported before the crash branch below so a faulting
	// run still leaves its counters behind (exit status stays 1).
	emitTelemetry(o, reg, table)
	emitHealedProfile(o, applied, prog.Supervisor())
	if runErr != nil {
		reportRecovery(os.Stderr, prog.Supervisor(), false)
		fmt.Fprintf(os.Stderr, "pkrusafe: program crashed: %v\n", runErr)
		if rep, ok := prog.Forensics().Capture(runErr); ok {
			exitOn(rep.WriteText(os.Stderr))
			if o.crashJSON != "" {
				writeTo(o.crashJSON, rep.WriteJSON)
			}
		}
		if o.traceN > 0 {
			fmt.Fprintf(os.Stderr, "pkrusafe: last %d runtime event(s) before death:\n", ring.Len())
			ring.Dump(os.Stderr)
		}
		closeServer(srv)
		os.Exit(1)
	}
	reportRecovery(os.Stderr, prog.Supervisor(), true)
	reportCrossings(os.Stderr, prog)
	fmt.Fprintf(os.Stderr, "pkrusafe: %v run returned %v (%d transitions)\n", cfg, res, prog.Transitions())
	closeServer(srv)
}

// cmdTrace executes the program under the mpk configuration with every
// request trace retained and writes the run's gate timeline as Chrome
// trace_event JSON. The run itself is a single traced request labelled
// with the entry function; a crash still writes the timeline first (with
// the fault marked on it), then exits 1 — the trace of a dying run is
// exactly the artifact worth keeping.
func cmdTrace(o *options, path string) {
	mod := loadModule(path)
	applied := loadProfile(o)
	_, err := compile.Pipeline(mod, applied)
	exitOn(err)
	policy, err := supervise.ParsePolicy(o.recoverName)
	exitOn(err)

	reg := telemetry.NewRegistry()
	tracer := gatetrace.New(gatetrace.Config{Registry: reg, RetainAll: true})
	prog, err := core.NewProgram(ffi.NewRegistry(), core.MPK, applied, core.Options{
		Telemetry:   reg,
		Tracing:     tracer,
		Trace:       trace.NewRing(defaultCrashRing),
		Forensics:   true,
		Crossings:   true,
		Supervision: supervise.Config{Policy: policy},
	})
	exitOn(err)

	m, err := interp.New(mod, prog, interp.Options{Output: os.Stdout})
	exitOn(err)
	tc := tracer.Start(o.entry)
	prog.Main().SetTraceContext(tc)
	res, runErr := m.Run(o.entry)
	prog.Main().SetTraceContext(nil)
	tc.Finish()

	out := o.outPath
	if out == "" {
		out = path + ".trace.json"
	}
	writeTo(out, tracer.WriteChromeTrace)
	ts := tracer.Stats()
	if out != "-" {
		fmt.Fprintf(os.Stderr, "pkrusafe: %d trace(s) (%d retained) written to %s\n",
			ts.Finished, ts.Retained, out)
	}
	if runErr != nil {
		reportRecovery(os.Stderr, prog.Supervisor(), false)
		fmt.Fprintf(os.Stderr, "pkrusafe: program crashed: %v\n", runErr)
		if rep, ok := prog.Forensics().Capture(runErr); ok {
			exitOn(rep.WriteText(os.Stderr))
		}
		os.Exit(1)
	}
	reportRecovery(os.Stderr, prog.Supervisor(), true)
	fmt.Fprintf(os.Stderr, "pkrusafe: mpk run returned %v (%d transitions)\n", res, prog.Transitions())
}

// cmdDomains runs the N-tenant virtual-key conformance drill and prints
// its multiplexing stats: how many logical domains rode how many hardware
// slots, what the LRU eviction traffic looked like, and whether the
// multiplexed stack ever disagreed with the ideal unbounded-keys model
// (exit status 1 if it did).
func cmdDomains(o *options, arg string) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		exitOn(fmt.Errorf("domains: want a positive tenant count, got %q", arg))
	}
	rep, err := conformance.RunVKeyDrill(conformance.VKeyOptions{Domains: n})
	exitOn(err)
	if o.jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		exitOn(err)
		fmt.Println(string(data))
	} else {
		fmt.Printf("domains:     %d logical on %d hardware slots\n", rep.Domains, rep.Slots)
		fmt.Printf("probes:      %d (own pool, shared pool, trusted secret, every cross-tenant pair)\n", rep.Probes)
		fmt.Printf("slot misses: %d\n", rep.SlotMisses)
		fmt.Printf("evictions:   %d\n", rep.Evictions)
		fmt.Printf("recycled:    %d\n", rep.Recycled)
		fmt.Printf("divergences: %d\n", len(rep.Divergences))
	}
	if len(rep.Divergences) > 0 {
		for _, d := range rep.Divergences {
			fmt.Fprintln(os.Stderr, "pkrusafe:", d)
		}
		os.Exit(1)
	}
}

// reportCrossings prints the crossing sampler's attribution summary.
// Silent when no forward gate was crossed (base/alloc configs).
func reportCrossings(w io.Writer, prog *core.Program) {
	cs := prog.Crossings()
	if cs.Sampled() == 0 {
		return
	}
	sites := cs.Sites()
	names := make([]string, len(sites))
	for i, id := range sites {
		names[i] = id.String()
	}
	line := fmt.Sprintf("pkrusafe: crossings: %d sampled, %d allocation site(s) attributed", cs.Sampled(), len(sites))
	if len(names) > 0 {
		line += ": " + strings.Join(names, ", ")
	}
	fmt.Fprintln(w, line)
}

// reportRecovery prints the supervisor's recovery log: the "crash
// averted" report when the run survived its compartment failures, or the
// recovery attempts that preceded a crash. Silent when nothing happened.
func reportRecovery(w io.Writer, sup *supervise.Supervisor, survived bool) {
	evs := sup.Events()
	if len(evs) == 0 {
		return
	}
	if survived {
		fmt.Fprintf(w, "pkrusafe: crash averted: %d recovery action(s) under policy %s\n",
			len(evs), sup.Policy())
	} else {
		fmt.Fprintf(w, "pkrusafe: recovery exhausted after %d action(s) under policy %s\n",
			len(evs), sup.Policy())
	}
	for _, e := range evs {
		line := fmt.Sprintf("pkrusafe:   #%d %s %s", e.Seq, e.Action, e.Call)
		if e.Site != "" {
			line += " site=" + e.Site
		}
		if e.Epoch != 0 {
			// A quarantine epoch belongs to one domain pool when the fault
			// was attributable to a tenant, and to the global MU tier
			// otherwise — render which pool paid for the recovery.
			if e.Domain != "" {
				line += fmt.Sprintf(" domain=%s epoch=%d", e.Domain, e.Epoch)
			} else {
				line += fmt.Sprintf(" mu-epoch=%d", e.Epoch)
			}
		}
		fmt.Fprintln(w, line)
		if e.Averted != nil {
			fmt.Fprintf(w, "pkrusafe:       would have died: %s %s at %s (pkey %d)\n",
				e.Averted.Fault.Access, e.Averted.Fault.Code, e.Averted.Fault.Addr, e.Averted.Fault.PKey)
		}
	}
	if delta := sup.Delta(); delta.Len() > 0 {
		ids := delta.IDs()
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = id.String()
		}
		fmt.Fprintf(w, "pkrusafe: healed %d allocation site(s): %s\n", len(ids), strings.Join(names, ", "))
	}
}

// emitHealedProfile persists the applied profile merged with the healed
// sites: running again with this profile needs no healing.
func emitHealedProfile(o *options, applied *profile.Profile, sup *supervise.Supervisor) {
	if o.healOut == "" {
		return
	}
	merged := profile.New()
	if applied != nil {
		merged.Merge(applied)
	}
	merged.Merge(sup.Delta())
	writeTo(o.healOut, func(w io.Writer) error {
		data, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			return err
		}
		_, err = w.Write(append(data, '\n'))
		return err
	})
}

// defaultCrashRing is the trace-ring capacity used when -trace is unset:
// enough tail for a crash report's forensics without meaningful memory.
const defaultCrashRing = 64

// closeServer drains the observability server before exit (nil-safe).
func closeServer(srv *obs.Server) {
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pkrusafe: observability server:", err)
	}
}

func emitTelemetry(o *options, reg *telemetry.Registry, table bool) {
	if reg == nil {
		return
	}
	if o.metrics != "" {
		writeTo(o.metrics, reg.WritePrometheus)
	}
	if o.metricsJSON != "" {
		writeTo(o.metricsJSON, reg.Snapshot().WriteJSON)
	}
	if table {
		if o.jsonOut {
			exitOn(reg.Snapshot().WriteJSON(os.Stdout))
		} else {
			fmt.Print(telemetry.FormatTable(reg.Snapshot()))
		}
	}
}

// writeTo writes via f to path, with "-" meaning stdout. File output is
// buffered so a failed export never leaves a truncated file behind.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		exitOn(f(os.Stdout))
		return
	}
	var buf bytes.Buffer
	exitOn(f(&buf))
	exitOn(os.WriteFile(path, buf.Bytes(), 0o644))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkrusafe:", err)
		os.Exit(1)
	}
}
