// Command pkru-profile manipulates sharing profiles, supporting the
// paper's workflow of assembling the deployment profile from many
// profiling runs (§5.3 merges Web Platform Tests, jQuery, Web-IDL and
// Selenium browsing sessions into one corpus):
//
//	pkru-profile show  a.prof            list shared sites with counters
//	pkru-profile merge a.prof b.prof ... -o combined.prof
//	pkru-profile diff  a.prof b.prof     sites in a missing from b
//
// A non-empty diff against the deployed profile is exactly the situation
// §6 warns about: flows the corpus missed will crash the enforced build.
//
// Every subcommand accepts -metrics / -metrics-json to export telemetry
// about the processed profiles (profiles loaded, sites seen/merged/
// missing, fault and byte totals) in Prometheus text or JSON form, for
// parity with pkrusafe and pkru-bench; "-" writes to stdout. Flags may
// appear anywhere on the command line.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// tool bundles the telemetry the profile operations report into.
type tool struct {
	reg          *telemetry.Registry
	loaded       *telemetry.Counter
	sitesSeen    *telemetry.Counter
	faultsSeen   *telemetry.Counter
	bytesSeen    *telemetry.Counter
	sitesMerged  *telemetry.Counter
	sitesMissing *telemetry.Counter
}

func newTool() *tool {
	reg := telemetry.NewRegistry()
	return &tool{
		reg:          reg,
		loaded:       reg.Counter("pkruprofile_profiles_loaded_total", "Profile files read."),
		sitesSeen:    reg.Counter("pkruprofile_sites_seen_total", "Shared allocation sites across all loaded profiles."),
		faultsSeen:   reg.Counter("pkruprofile_faults_seen_total", "Recorded faults across all loaded profiles."),
		bytesSeen:    reg.Counter("pkruprofile_bytes_seen_total", "Recorded bytes across all loaded profiles."),
		sitesMerged:  reg.Counter("pkruprofile_sites_merged_total", "Distinct sites in the merged output profile."),
		sitesMissing: reg.Counter("pkruprofile_sites_missing_total", "Sites the diff found missing from the second profile."),
	}
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var metrics, metricsJSON string
	args = stripFlag(args, "-metrics", &metrics)
	args = stripFlag(args, "-metrics-json", &metricsJSON)

	tl := newTool()
	status := 0
	switch cmd {
	case "show":
		if len(args) < 1 {
			usage()
		}
		p := tl.load(args[0])
		fmt.Printf("%d shared allocation site(s)\n", p.Len())
		for _, id := range p.IDs() {
			rec, _ := p.Get(id)
			fmt.Printf("  %-40s faults=%-8d bytes=%d\n", id, rec.Faults, rec.Bytes)
		}

	case "merge":
		var out string
		inputs := stripFlag(args, "-o", &out)
		if len(inputs) == 0 || out == "" {
			usage()
		}
		merged := profile.New()
		for _, in := range inputs {
			merged.Merge(tl.load(in))
		}
		tl.sitesMerged.Add(uint64(merged.Len()))
		data, err := json.MarshalIndent(merged, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(out, data, 0o644))
		fmt.Printf("merged %d profile(s): %d shared sites -> %s\n", len(inputs), merged.Len(), out)

	case "diff":
		if len(args) < 2 {
			usage()
		}
		a, b := tl.load(args[0]), tl.load(args[1])
		onlyA := a.Diff(b)
		tl.sitesMissing.Add(uint64(len(onlyA)))
		if len(onlyA) == 0 {
			fmt.Printf("%s ⊆ %s: every site covered\n", args[0], args[1])
		} else {
			fmt.Printf("%d site(s) in %s missing from %s (enforced builds using the latter would crash on these):\n",
				len(onlyA), args[0], args[1])
			for _, id := range onlyA {
				fmt.Printf("  %s\n", id)
			}
			status = 1
		}

	default:
		usage()
	}

	if metrics != "" {
		writeTo(metrics, tl.reg.WritePrometheus)
	}
	if metricsJSON != "" {
		writeTo(metricsJSON, tl.reg.Snapshot().WriteJSON)
	}
	os.Exit(status)
}

// stripFlag removes "name value" from args wherever it appears (matching
// the historical anywhere-on-the-line parsing) and stores the value.
func stripFlag(args []string, name string, value *string) []string {
	out := args[:0:0]
	for i := 0; i < len(args); i++ {
		if args[i] == name && i+1 < len(args) {
			*value = args[i+1]
			i++
			continue
		}
		out = append(out, args[i])
	}
	return out
}

func (t *tool) load(path string) *profile.Profile {
	data, err := os.ReadFile(path)
	exitOn(err)
	p := profile.New()
	exitOn(json.Unmarshal(data, p))
	t.loaded.Inc()
	t.sitesSeen.Add(uint64(p.Len()))
	for _, id := range p.IDs() {
		rec, _ := p.Get(id)
		t.faultsSeen.Add(rec.Faults)
		t.bytesSeen.Add(rec.Bytes)
	}
	return p
}

// writeTo writes via f to path, with "-" meaning stdout. File output is
// buffered so a failed export never leaves a truncated file behind.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		exitOn(f(os.Stdout))
		return
	}
	var buf bytes.Buffer
	exitOn(f(&buf))
	exitOn(os.WriteFile(path, buf.Bytes(), 0o644))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pkru-profile show  <a.prof>
  pkru-profile merge <a.prof> [b.prof ...] -o <out.prof>
  pkru-profile diff  <a.prof> <b.prof>

flags (any subcommand, anywhere on the line):
  -metrics <path>       write Prometheus metrics ("-" = stdout)
  -metrics-json <path>  write a JSON metrics snapshot ("-" = stdout)`)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-profile:", err)
		os.Exit(1)
	}
}
