// Command pkru-profile manipulates sharing profiles, supporting the
// paper's workflow of assembling the deployment profile from many
// profiling runs (§5.3 merges Web Platform Tests, jQuery, Web-IDL and
// Selenium browsing sessions into one corpus):
//
//	pkru-profile show  a.prof            list shared sites with counters
//	pkru-profile merge a.prof b.prof ... -o combined.prof
//	pkru-profile diff  a.prof b.prof     sites in a missing from b
//
// A non-empty diff against the deployed profile is exactly the situation
// §6 warns about: flows the corpus missed will crash the enforced build.
//
// The same subcommands also operate on a *generational profile store*
// (docs/profiling.md) when given -store:
//
//	pkru-profile show  -store s.json                 list generations
//	pkru-profile merge -store s.json d.prof ...      commit a generation
//	                   [-promote]                    ... and activate it
//	pkru-profile diff  -store s.json [-from N -to M -window W]
//	pkru-profile serve -store s.json [-listen addr]  serve /profile et al.
//
// Store diffs additionally surface re-tighten candidates: sites that have
// not been observed crossing for `window` generations, i.e. the MU→MT
// demotions a fresh profiling run would discover.
//
// Every subcommand accepts -metrics / -metrics-json to export telemetry
// about the processed profiles (profiles loaded, sites seen/merged/
// missing, fault and byte totals) in Prometheus text or JSON form, for
// parity with pkrusafe and pkru-bench; "-" writes to stdout. Flags may
// appear anywhere on the command line.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/profstore"
	"repro/internal/telemetry"
)

// tool bundles the telemetry the profile operations report into.
type tool struct {
	reg          *telemetry.Registry
	loaded       *telemetry.Counter
	sitesSeen    *telemetry.Counter
	faultsSeen   *telemetry.Counter
	bytesSeen    *telemetry.Counter
	sitesMerged  *telemetry.Counter
	sitesMissing *telemetry.Counter
}

func newTool() *tool {
	reg := telemetry.NewRegistry()
	return &tool{
		reg:          reg,
		loaded:       reg.Counter("pkruprofile_profiles_loaded_total", "Profile files read."),
		sitesSeen:    reg.Counter("pkruprofile_sites_seen_total", "Shared allocation sites across all loaded profiles."),
		faultsSeen:   reg.Counter("pkruprofile_faults_seen_total", "Recorded faults across all loaded profiles."),
		bytesSeen:    reg.Counter("pkruprofile_bytes_seen_total", "Recorded bytes across all loaded profiles."),
		sitesMerged:  reg.Counter("pkruprofile_sites_merged_total", "Distinct sites in the merged output profile."),
		sitesMissing: reg.Counter("pkruprofile_sites_missing_total", "Sites the diff found missing from the second profile."),
	}
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var metrics, metricsJSON, storePath string
	args = stripFlag(args, "-metrics", &metrics)
	args = stripFlag(args, "-metrics-json", &metricsJSON)
	args = stripFlag(args, "-store", &storePath)

	tl := newTool()
	status := 0
	switch cmd {
	case "show":
		if storePath != "" {
			showStore(tl, storePath)
			break
		}
		if len(args) < 1 {
			usage()
		}
		p := tl.load(args[0])
		fmt.Printf("%d shared allocation site(s)\n", p.Len())
		for _, id := range p.IDs() {
			rec, _ := p.Get(id)
			fmt.Printf("  %-40s faults=%-8d bytes=%d\n", id, rec.Faults, rec.Bytes)
		}

	case "merge":
		if storePath != "" {
			mergeStore(tl, storePath, args)
			break
		}
		var out string
		inputs := stripFlag(args, "-o", &out)
		if len(inputs) == 0 || out == "" {
			usage()
		}
		merged := profile.New()
		for _, in := range inputs {
			merged.Merge(tl.load(in))
		}
		tl.sitesMerged.Add(uint64(merged.Len()))
		data, err := json.MarshalIndent(merged, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(out, data, 0o644))
		fmt.Printf("merged %d profile(s): %d shared sites -> %s\n", len(inputs), merged.Len(), out)

	case "diff":
		if storePath != "" {
			status = diffStore(storePath, args)
			break
		}
		if len(args) < 2 {
			usage()
		}
		a, b := tl.load(args[0]), tl.load(args[1])
		onlyA := a.Diff(b)
		tl.sitesMissing.Add(uint64(len(onlyA)))
		if len(onlyA) == 0 {
			fmt.Printf("%s ⊆ %s: every site covered\n", args[0], args[1])
		} else {
			fmt.Printf("%d site(s) in %s missing from %s (enforced builds using the latter would crash on these):\n",
				len(onlyA), args[0], args[1])
			for _, id := range onlyA {
				fmt.Printf("  %s\n", id)
			}
			status = 1
		}

	case "serve":
		if storePath == "" {
			usage()
		}
		serveStore(storePath, args)

	default:
		usage()
	}

	if metrics != "" {
		writeTo(metrics, tl.reg.WritePrometheus)
	}
	if metricsJSON != "" {
		writeTo(metricsJSON, tl.reg.Snapshot().WriteJSON)
	}
	os.Exit(status)
}

// showStore lists a store's generations and the active generation's sites.
func showStore(t *tool, path string) {
	s, err := profstore.LoadFile(path)
	exitOn(err)
	t.loaded.Inc()
	fmt.Printf("profile store %s: %d generation(s), active %d\n", path, s.Len(), s.ActiveSeq())
	for i := 0; i < s.Len(); i++ {
		g, _ := s.Generation(i)
		mark := " "
		if g.Seq == s.ActiveSeq() {
			mark = "*"
		}
		parent := "-"
		if g.Parent >= 0 {
			parent = strconv.Itoa(g.Parent)
		}
		fmt.Printf("  #%d%s source=%-8s parent=%-2s sites=%d\n", g.Seq, mark, g.Source, parent, g.Sites.Len())
	}
	active := s.Active()
	t.sitesSeen.Add(uint64(active.Sites.Len()))
	if active.Sites.Len() > 0 {
		fmt.Printf("active generation %d sites:\n", active.Seq)
		for _, id := range active.Sites.IDs() {
			rec, _ := active.Sites.Get(id)
			last, _ := s.LastSeen(id)
			fmt.Printf("  %-40s faults=%-8d bytes=%-10d last_seen=%d\n", id, rec.Faults, rec.Bytes, last)
		}
	}
}

// mergeStore commits the given delta profiles as one new generation
// (creating the store if the file does not exist yet), optionally
// promoting it immediately with -promote.
func mergeStore(t *tool, path string, args []string) {
	args, promote := stripBool(args, "-promote")
	if len(args) == 0 {
		usage()
	}
	s, err := profstore.LoadFileOrNew(path)
	exitOn(err)
	delta := profile.New()
	for _, in := range args {
		delta.Merge(t.load(in))
	}
	gen := s.Commit(delta, "merge")
	t.sitesMerged.Add(uint64(gen.Sites.Len()))
	fmt.Printf("committed generation %d (source merge, %d site(s)) -> %s\n", gen.Seq, gen.Sites.Len(), path)
	if promote {
		exitOn(s.Promote(gen.Seq))
		fmt.Printf("promoted generation %d\n", gen.Seq)
	}
	exitOn(s.SaveFile(path))
}

// diffStore prints a deterministic generation diff with the re-tighten
// section. Defaults compare the active generation against its parent.
func diffStore(path string, args []string) int {
	s, err := profstore.LoadFile(path)
	exitOn(err)
	active := s.Active()
	from, to := active.Parent, active.Seq
	if from < 0 {
		from = active.Seq
	}
	window := 0
	args = stripInt(args, "-from", &from)
	args = stripInt(args, "-to", &to)
	args = stripInt(args, "-window", &window)
	if len(args) != 0 {
		usage()
	}
	d, err := s.Diff(from, to, window)
	exitOn(err)
	fmt.Printf("store diff: generation %d -> %d\n", d.From, d.To)
	fmt.Printf("added (%d):\n", len(d.Added))
	for _, site := range d.Added {
		fmt.Printf("  + %s\n", site)
	}
	fmt.Printf("removed (%d):\n", len(d.Removed))
	for _, site := range d.Removed {
		fmt.Printf("  - %s\n", site)
	}
	fmt.Printf("retained (%d):\n", len(d.Retained))
	for _, site := range d.Retained {
		fmt.Printf("  = %s\n", site)
	}
	fmt.Printf("re-tighten candidates (window %d, proposed MU->MT demotions) (%d):\n", d.Window, len(d.Retighten))
	for _, c := range d.Retighten {
		fmt.Printf("  ~ %s last crossed in generation %d\n", c.Site, c.LastSeen)
	}
	if len(d.Retighten) > 0 {
		return 1
	}
	return 0
}

// serveStore exposes a persisted store over the observability endpoints
// (/profile, /profile/diff) and blocks until interrupted.
func serveStore(path string, args []string) {
	listen := "127.0.0.1:0"
	args = stripFlag(args, "-listen", &listen)
	if len(args) != 0 {
		usage()
	}
	s, err := profstore.LoadFile(path)
	exitOn(err)
	reg := telemetry.NewRegistry()
	s.SetTelemetry(reg)
	srv, err := obs.ListenAndServe(listen, obs.ServerConfig{Registry: reg, Profiles: s})
	exitOn(err)
	fmt.Fprintf(os.Stderr, "pkru-profile: profile server on %s (Ctrl-C to stop)\n", srv.URL())
	select {}
}

// stripFlag removes "name value" from args wherever it appears (matching
// the historical anywhere-on-the-line parsing) and stores the value.
func stripFlag(args []string, name string, value *string) []string {
	out := args[:0:0]
	for i := 0; i < len(args); i++ {
		if args[i] == name && i+1 < len(args) {
			*value = args[i+1]
			i++
			continue
		}
		out = append(out, args[i])
	}
	return out
}

// stripInt is stripFlag for integer-valued flags.
func stripInt(args []string, name string, value *int) []string {
	var s string
	args = stripFlag(args, name, &s)
	if s != "" {
		n, err := strconv.Atoi(s)
		exitOn(err)
		*value = n
	}
	return args
}

// stripBool removes a valueless flag from args, reporting its presence.
func stripBool(args []string, name string) ([]string, bool) {
	out := args[:0:0]
	found := false
	for _, a := range args {
		if a == name {
			found = true
			continue
		}
		out = append(out, a)
	}
	return out, found
}

func (t *tool) load(path string) *profile.Profile {
	data, err := os.ReadFile(path)
	exitOn(err)
	p := profile.New()
	exitOn(json.Unmarshal(data, p))
	t.loaded.Inc()
	t.sitesSeen.Add(uint64(p.Len()))
	for _, id := range p.IDs() {
		rec, _ := p.Get(id)
		t.faultsSeen.Add(rec.Faults)
		t.bytesSeen.Add(rec.Bytes)
	}
	return p
}

// writeTo writes via f to path, with "-" meaning stdout. File output is
// buffered so a failed export never leaves a truncated file behind.
func writeTo(path string, f func(io.Writer) error) {
	if path == "-" {
		exitOn(f(os.Stdout))
		return
	}
	var buf bytes.Buffer
	exitOn(f(&buf))
	exitOn(os.WriteFile(path, buf.Bytes(), 0o644))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pkru-profile show  <a.prof>
  pkru-profile merge <a.prof> [b.prof ...] -o <out.prof>
  pkru-profile diff  <a.prof> <b.prof>

generational store mode (docs/profiling.md):
  pkru-profile show  -store <s.json>
  pkru-profile merge -store <s.json> <delta.prof> [...] [-promote]
  pkru-profile diff  -store <s.json> [-from N] [-to M] [-window W]
  pkru-profile serve -store <s.json> [-listen addr]

flags (any subcommand, anywhere on the line):
  -metrics <path>       write Prometheus metrics ("-" = stdout)
  -metrics-json <path>  write a JSON metrics snapshot ("-" = stdout)`)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-profile:", err)
		os.Exit(1)
	}
}
