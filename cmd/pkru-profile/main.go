// Command pkru-profile manipulates sharing profiles, supporting the
// paper's workflow of assembling the deployment profile from many
// profiling runs (§5.3 merges Web Platform Tests, jQuery, Web-IDL and
// Selenium browsing sessions into one corpus):
//
//	pkru-profile show  a.prof            list shared sites with counters
//	pkru-profile merge a.prof b.prof ... -o combined.prof
//	pkru-profile diff  a.prof b.prof     sites in a missing from b
//
// A non-empty diff against the deployed profile is exactly the situation
// §6 warns about: flows the corpus missed will crash the enforced build.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/profile"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd := os.Args[1]
	switch cmd {
	case "show":
		p := load(os.Args[2])
		fmt.Printf("%d shared allocation site(s)\n", p.Len())
		for _, id := range p.IDs() {
			rec, _ := p.Get(id)
			fmt.Printf("  %-40s faults=%-8d bytes=%d\n", id, rec.Faults, rec.Bytes)
		}

	case "merge":
		var inputs []string
		out := ""
		args := os.Args[2:]
		for i := 0; i < len(args); i++ {
			if args[i] == "-o" && i+1 < len(args) {
				out = args[i+1]
				i++
				continue
			}
			inputs = append(inputs, args[i])
		}
		if len(inputs) == 0 || out == "" {
			usage()
		}
		merged := profile.New()
		for _, in := range inputs {
			merged.Merge(load(in))
		}
		data, err := json.MarshalIndent(merged, "", "  ")
		exitOn(err)
		exitOn(os.WriteFile(out, data, 0o644))
		fmt.Printf("merged %d profile(s): %d shared sites -> %s\n", len(inputs), merged.Len(), out)

	case "diff":
		if len(os.Args) < 4 {
			usage()
		}
		a, b := load(os.Args[2]), load(os.Args[3])
		onlyA := a.Diff(b)
		if len(onlyA) == 0 {
			fmt.Printf("%s ⊆ %s: every site covered\n", os.Args[2], os.Args[3])
			return
		}
		fmt.Printf("%d site(s) in %s missing from %s (enforced builds using the latter would crash on these):\n",
			len(onlyA), os.Args[2], os.Args[3])
		for _, id := range onlyA {
			fmt.Printf("  %s\n", id)
		}
		os.Exit(1)

	default:
		usage()
	}
}

func load(path string) *profile.Profile {
	data, err := os.ReadFile(path)
	exitOn(err)
	p := profile.New()
	exitOn(json.Unmarshal(data, p))
	return p
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pkru-profile show  <a.prof>
  pkru-profile merge <a.prof> [b.prof ...] -o <out.prof>
  pkru-profile diff  <a.prof> <b.prof>`)
	os.Exit(2)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pkru-profile:", err)
		os.Exit(1)
	}
}
