// Command tracecheck validates the artifacts the tracing plane exports
// (docs/tracing.md): a Chrome trace_event timeline written by
// `pkru-servo -trace-json` / `pkrusafe trace` / the /trace.json obs
// endpoint, and optionally a `-latency-out` per-tenant latency report.
//
//	tracecheck timeline.json [latency.json]
//
// The timeline must parse, carry well-formed events, and — when any
// trace on it faulted — contain at least one complete fault arc: a gate
// span, a fault instant and a recovery instant on the same thread
// (trace) ID. The latency report must be schema 1 with ordered
// per-tenant quantiles. Exit status 1 with a diagnostic on any
// violation; `make trace-demo` and the CI tracing job run this against
// freshly generated artifacts.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
	Stats           struct {
		Finished uint64 `json:"finished"`
		Retained uint64 `json:"retained"`
	} `json:"pkrusafeStats"`
}

type tenantRow struct {
	Tenant        string  `json:"tenant"`
	Requests      int     `json:"requests"`
	P50Ns         int64   `json:"p50_ns"`
	P95Ns         int64   `json:"p95_ns"`
	P99Ns         int64   `json:"p99_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type latencyReport struct {
	Schema     int         `json:"schema"`
	Experiment string      `json:"experiment"`
	Requests   int         `json:"requests"`
	Tenants    []tenantRow `json:"tenants"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func checkTimeline(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s is not valid JSON: %v", path, err)
	}
	if doc.DisplayTimeUnit != "ms" {
		fail("%s: displayTimeUnit = %q, want \"ms\"", path, doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}

	// Per-thread accounting: which trace IDs carry a gate span, a fault,
	// a recovery. The thread metadata row names the trace and tenant.
	type arc struct {
		gate, fault, recover bool
		name                 string
	}
	breakerStates := map[string]bool{"open": true, "half-open": true, "closed": true}
	breakers := 0
	arcs := make(map[int]*arc)
	at := func(tid int) *arc {
		a, ok := arcs[tid]
		if !ok {
			a = &arc{}
			arcs[tid] = a
		}
		return a
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name != "thread_name" {
				fail("%s: event %d: metadata phase with name %q", path, i, ev.Name)
			}
			if n, ok := ev.Args["name"].(string); ok {
				at(ev.TID).name = n
			}
		case "X":
			if ev.TS == nil || ev.Dur < 0 {
				fail("%s: event %d (%s): complete event without ts/dur", path, i, ev.Name)
			}
			if strings.HasPrefix(ev.Name, "gate:") {
				at(ev.TID).gate = true
			}
		case "i":
			if ev.TS == nil {
				fail("%s: event %d (%s): instant without ts", path, i, ev.Name)
			}
			if ev.Name == "fault" {
				at(ev.TID).fault = true
			}
			if strings.HasPrefix(ev.Name, "recover:") {
				at(ev.TID).recover = true
			}
			if rest, ok := strings.CutPrefix(ev.Name, "breaker:"); ok {
				// Circuit-breaker transition instants carry the new state
				// in the name; anything else is a malformed emitter.
				if !breakerStates[rest] {
					fail("%s: event %d: breaker instant with unknown state %q", path, i, rest)
				}
				breakers++
			}
		default:
			fail("%s: event %d (%s): unexpected phase %q", path, i, ev.Name, ev.Phase)
		}
	}

	faulted, complete := 0, 0
	for _, a := range arcs {
		if a.fault {
			faulted++
			if a.gate && a.recover {
				complete++
			}
		}
	}
	if faulted > 0 && complete == 0 {
		fail("%s: %d faulted trace(s) but none correlates gate + fault + recovery on one trace ID", path, faulted)
	}
	fmt.Printf("tracecheck: %s: %d event(s), %d trace(s), %d faulted, %d complete fault arc(s), %d breaker transition(s)\n",
		path, len(doc.TraceEvents), len(arcs), faulted, complete, breakers)
}

func checkLatency(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var rep latencyReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fail("%s is not valid JSON: %v", path, err)
	}
	if rep.Schema != 1 {
		fail("%s: schema = %d, want 1", path, rep.Schema)
	}
	if rep.Experiment != "gatetrace" {
		fail("%s: experiment = %q, want \"gatetrace\"", path, rep.Experiment)
	}
	if len(rep.Tenants) == 0 {
		fail("%s: no per-tenant rows", path)
	}
	for _, row := range rep.Tenants {
		if row.Requests <= 0 {
			fail("%s: tenant %s: %d requests", path, row.Tenant, row.Requests)
		}
		if row.P50Ns <= 0 || row.P50Ns > row.P95Ns || row.P95Ns > row.P99Ns {
			fail("%s: tenant %s: quantiles out of order (p50=%d p95=%d p99=%d)",
				path, row.Tenant, row.P50Ns, row.P95Ns, row.P99Ns)
		}
		if row.ThroughputRPS <= 0 {
			fail("%s: tenant %s: throughput %.3f", path, row.Tenant, row.ThroughputRPS)
		}
	}
	fmt.Printf("tracecheck: %s: %d tenant(s), %d request(s), quantiles ordered\n",
		path, len(rep.Tenants), rep.Requests)
}

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <timeline.json> [latency.json]")
		os.Exit(2)
	}
	checkTimeline(os.Args[1])
	if len(os.Args) == 3 {
		checkLatency(os.Args[2])
	}
}
